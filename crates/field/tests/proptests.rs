//! Property-style tests of the field axioms across all three shipped
//! fields, driven by a small in-tree deterministic generator (the build
//! must work offline, so no external proptest dependency).

use zaatar_field::{Field, PrimeField, F128, F220, F61};

/// Deterministic splitmix64 generator standing in for proptest.
struct Gen(u64);

impl Gen {
    fn new(seed: u64) -> Self {
        Gen(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next_u64() % (hi - lo)
    }

    fn field<F: Field>(&mut self) -> F {
        F::random_from(|| self.next_u64())
    }
}

const CASES: usize = 256;

macro_rules! field_axioms {
    ($modname:ident, $F:ty) => {
        mod $modname {
            use super::*;

            #[test]
            fn add_and_mul_commute() {
                let mut g = Gen::new(1);
                for _ in 0..CASES {
                    let (a, b): ($F, $F) = (g.field(), g.field());
                    assert_eq!(a + b, b + a);
                    assert_eq!(a * b, b * a);
                }
            }

            #[test]
            fn add_and_mul_associate() {
                let mut g = Gen::new(2);
                for _ in 0..CASES {
                    let (a, b, c): ($F, $F, $F) = (g.field(), g.field(), g.field());
                    assert_eq!((a + b) + c, a + (b + c));
                    assert_eq!((a * b) * c, a * (b * c));
                }
            }

            #[test]
            fn mul_distributes() {
                let mut g = Gen::new(3);
                for _ in 0..CASES {
                    let (a, b, c): ($F, $F, $F) = (g.field(), g.field(), g.field());
                    assert_eq!(a * (b + c), a * b + a * c);
                }
            }

            #[test]
            fn sub_is_add_neg() {
                let mut g = Gen::new(4);
                for _ in 0..CASES {
                    let (a, b): ($F, $F) = (g.field(), g.field());
                    assert_eq!(a - b, a + (-b));
                }
            }

            #[test]
            fn double_and_square() {
                let mut g = Gen::new(5);
                for _ in 0..CASES {
                    let a: $F = g.field();
                    assert_eq!(a.double(), a + a);
                    assert_eq!(a.square(), a * a);
                }
            }

            #[test]
            fn inverse_cancels() {
                let mut g = Gen::new(6);
                for _ in 0..CASES {
                    let a: $F = g.field();
                    if let Some(inv) = a.inverse() {
                        assert_eq!(a * inv, <$F>::ONE);
                    } else {
                        assert!(a.is_zero());
                    }
                }
            }

            #[test]
            fn pow_adds_exponents() {
                let mut g = Gen::new(7);
                for _ in 0..CASES {
                    let a: $F = g.field();
                    let e1 = g.range_u64(0, 64);
                    let e2 = g.range_u64(0, 64);
                    assert_eq!(a.pow(e1) * a.pow(e2), a.pow(e1 + e2));
                }
            }

            #[test]
            fn serialization_round_trips() {
                let mut g = Gen::new(8);
                for _ in 0..CASES {
                    let a: $F = g.field();
                    let bytes = a.to_bytes_le();
                    assert_eq!(<$F>::from_bytes_le(&bytes), Some(a));
                    let words = a.to_canonical_words();
                    assert_eq!(<$F>::from_canonical_words(&words), Some(a));
                }
            }

            /// Montgomery form round-trips exactly at the representation
            /// edges — 0, 1, p−1 — and for random limb patterns: the NTT
            /// kernels lean on `to/from_canonical_words` agreeing with
            /// the arithmetic everywhere, not just in the bulk.
            #[test]
            fn montgomery_round_trips_at_edges() {
                let p_minus_1 = {
                    let mut w = <$F>::modulus_words();
                    w[0] -= 1; // modulus is odd, no borrow
                    w
                };
                // 0 and 1 in canonical words.
                let zero = <$F>::from_canonical_words(&vec![0; p_minus_1.len()])
                    .expect("zero is canonical");
                assert!(zero.is_zero());
                assert_eq!(zero, <$F>::ZERO);
                let mut one_words = vec![0; p_minus_1.len()];
                one_words[0] = 1;
                let one = <$F>::from_canonical_words(&one_words).expect("one is canonical");
                assert_eq!(one, <$F>::ONE);
                // p−1 ≡ −1: round-trips and behaves like −1 arithmetically.
                let top = <$F>::from_canonical_words(&p_minus_1).expect("p-1 is canonical");
                assert_eq!(top.to_canonical_words(), p_minus_1);
                assert_eq!(top, -<$F>::ONE);
                assert_eq!(top + <$F>::ONE, <$F>::ZERO);
                assert_eq!(top * top, <$F>::ONE);
                // The modulus itself is not canonical.
                assert_eq!(<$F>::from_canonical_words(&<$F>::modulus_words()), None);
                // Random limb patterns: reject or round-trip, never mangle.
                let mut g = Gen::new(11);
                for _ in 0..CASES {
                    let words: Vec<u64> =
                        (0..p_minus_1.len()).map(|_| g.next_u64()).collect();
                    if let Some(x) = <$F>::from_canonical_words(&words) {
                        assert_eq!(x.to_canonical_words(), words);
                    }
                }
                // Elements from the arithmetic side round-trip too.
                for _ in 0..CASES {
                    let a: $F = g.field();
                    let words = a.to_canonical_words();
                    assert_eq!(<$F>::from_canonical_words(&words), Some(a));
                }
            }

            /// `batch_inverse` must match per-element inversion with
            /// zeros scattered anywhere in the batch (Montgomery's trick
            /// multiplies prefixes, so an unskipped zero would poison
            /// every later element).
            #[test]
            fn batch_inverse_with_zeros() {
                use zaatar_field::batch_inverse;
                let mut g = Gen::new(12);
                // Adversarial fixed shapes: zeros at both ends, runs of
                // zeros, alternating, singleton and all-zero batches.
                let n = 17;
                let mut shapes: Vec<Vec<bool>> = vec![
                    vec![false; n],
                    vec![true; n],
                    (0..n).map(|i| i == 0).collect(),
                    (0..n).map(|i| i == n - 1).collect(),
                    (0..n).map(|i| i % 2 == 0).collect(),
                    (0..n).map(|i| i < n / 2).collect(),
                    vec![true],
                    vec![false],
                ];
                // Plus random masks over random lengths.
                for _ in 0..32 {
                    let len = g.range_u64(0, 40) as usize;
                    shapes.push((0..len).map(|_| g.next_u64() % 3 == 0).collect());
                }
                for mask in shapes {
                    let vals: Vec<$F> = mask
                        .iter()
                        .map(|z| {
                            if *z {
                                <$F>::ZERO
                            } else {
                                // random_from may return 0; force nonzero
                                // so the mask fully controls zero layout.
                                let x: $F = g.field();
                                if x.is_zero() {
                                    <$F>::ONE
                                } else {
                                    x
                                }
                            }
                        })
                        .collect();
                    let mut batched = vals.clone();
                    batch_inverse(&mut batched);
                    for (i, (orig, inv)) in vals.iter().zip(batched.iter()).enumerate() {
                        if orig.is_zero() {
                            assert!(inv.is_zero(), "zero slot {i} must stay zero");
                        } else {
                            assert_eq!(
                                *inv,
                                orig.inverse().expect("nonzero"),
                                "slot {i} disagrees with scalar inversion"
                            );
                        }
                    }
                }
            }
        }
    };
}

field_axioms!(f61, F61);
field_axioms!(f128, F128);
field_axioms!(f220, F220);

mod f61_reference {
    use super::*;

    const P61: u128 = 0x1ffffff900000001;

    /// The generic Montgomery pipeline agrees with plain u128 arithmetic
    /// on the single-limb field for all of (+, −, ×).
    #[test]
    fn agrees_with_u128() {
        let mut g = Gen::new(9);
        for _ in 0..CASES {
            let a = u128::from(g.next_u64()) % P61;
            let b = u128::from(g.next_u64()) % P61;
            let (fa, fb) = (F61::from_u128(a), F61::from_u128(b));
            assert_eq!(fa + fb, F61::from_u128((a + b) % P61));
            assert_eq!(fa - fb, F61::from_u128((a + P61 - b) % P61));
            assert_eq!(fa * fb, F61::from_u128(a * b % P61));
        }
    }

    #[test]
    fn from_u64_reduces() {
        let mut g = Gen::new(10);
        for _ in 0..CASES {
            let x = g.next_u64();
            assert_eq!(F61::from_u64(x), F61::from_u128(u128::from(x) % P61));
        }
        // Boundary values.
        for x in [0, 1, u64::MAX, P61 as u64, P61 as u64 - 1] {
            assert_eq!(F61::from_u64(x), F61::from_u128(u128::from(x) % P61));
        }
    }
}
