//! Concrete field parameter tables.
//!
//! All three moduli have the form `p = c·2³² + 1` (2-adicity 32), so radix-2
//! NTT domains of up to 2³² points exist — large enough for any constraint
//! set this system can hold in memory. The Montgomery constants below were
//! generated offline with an independent big-integer implementation
//! (Miller–Rabin primality, `R² mod p`, `−p⁻¹ mod 2⁶⁴`, and a root of unity
//! `g^((p−1)/2³²)` for the quadratic non-residue `g = 3`) and are
//! cross-checked by this crate's unit tests.

use crate::traits::FpParams;

/// Parameters for the 128-bit benchmark field (§5.1).
///
/// `p = 340282366920938463463374607393113505793`.
#[derive(Copy, Clone, Debug, Default, Eq, PartialEq, Hash)]
pub struct F128Params;

impl FpParams<2> for F128Params {
    const MODULUS: [u64; 2] = [0xfffffff700000001, 0xffffffffffffffff];
    const R: [u64; 2] = [0x00000008ffffffff, 0x0000000000000000];
    const R2: [u64; 2] = [0xffffffee00000001, 0x0000000000000050];
    const INV: u64 = 0xfffffff6ffffffff;
    const NUM_BITS: u32 = 128;
    const TWO_ADICITY: u32 = 32;
    const GENERATOR: u64 = 3;
    const ROOT_OF_UNITY: [u64; 2] = [0xf6d4a0e8a19262da, 0x0c368304ae2a8df0];
}

/// Parameters for the 220-bit field used by the rational benchmark (§5.1).
///
/// `p = 1684996666696914987166688442938726917102321526408785780056090738689`.
#[derive(Copy, Clone, Debug, Default, Eq, PartialEq, Hash)]
pub struct F220Params;

impl FpParams<4> for F220Params {
    const MODULUS: [u64; 4] = [
        0xfffffffd00000001,
        0xffffffffffffffff,
        0xffffffffffffffff,
        0x000000000fffffff,
    ];
    const R: [u64; 4] = [
        0xfffffff000000000,
        0x000000000000002f,
        0x0000000000000000,
        0x0000000000000000,
    ];
    const R2: [u64; 4] = [
        0x0000000000000000,
        0xfffffa0000000100,
        0x00000000000008ff,
        0x0000000000000000,
    ];
    const INV: u64 = 0xfffffffcffffffff;
    const NUM_BITS: u32 = 220;
    const TWO_ADICITY: u32 = 32;
    const GENERATOR: u64 = 3;
    const ROOT_OF_UNITY: [u64; 4] = [
        0xd069324ae8011c00,
        0xd5816408d08b311a,
        0xf6441141ec8c3b06,
        0x000000000b849f2b,
    ];
}

/// Parameters for the 61-bit test field.
///
/// `p = 2305842979148922881`; small enough for `u128` reference arithmetic.
#[derive(Copy, Clone, Debug, Default, Eq, PartialEq, Hash)]
pub struct F61Params;

impl FpParams<1> for F61Params {
    const MODULUS: [u64; 1] = [0x1ffffff900000001];
    const R: [u64; 1] = [0x00000037fffffff8];
    const R2: [u64; 1] = [0x0002aa7fffff9e40];
    const INV: u64 = 0x1ffffff8ffffffff;
    const NUM_BITS: u32 = 61;
    const TWO_ADICITY: u32 = 32;
    const GENERATOR: u64 = 3;
    const ROOT_OF_UNITY: [u64; 1] = [0x19d4a9c5f6ca5841];
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::limbs::{geq, sub_assign};
    use crate::{Field, PrimeField, F128, F220, F61};

    /// `R` constants must equal `from_u64(1)`'s Montgomery limbs.
    #[test]
    fn r_constant_is_montgomery_one() {
        assert_eq!(F128::ONE.mont_limbs(), F128Params::R);
        assert_eq!(F220::ONE.mont_limbs(), F220Params::R);
        assert_eq!(F61::ONE.mont_limbs(), F61Params::R);
    }

    /// `INV * MODULUS[0] ≡ −1 (mod 2⁶⁴)`.
    #[test]
    fn inv_constants() {
        fn check<const N: usize, P: FpParams<N>>() {
            assert_eq!(P::INV.wrapping_mul(P::MODULUS[0]), u64::MAX);
        }
        check::<2, F128Params>();
        check::<4, F220Params>();
        check::<1, F61Params>();
    }

    /// The stored roots of unity are canonical (reduced) values.
    #[test]
    fn roots_are_reduced() {
        fn check<const N: usize, P: FpParams<N>>() {
            assert!(geq(&P::MODULUS, &P::ROOT_OF_UNITY));
            let mut diff = P::MODULUS;
            sub_assign(&mut diff, &P::ROOT_OF_UNITY);
            assert!(diff.iter().any(|&w| w != 0));
        }
        check::<2, F128Params>();
        check::<4, F220Params>();
        check::<1, F61Params>();
    }

    /// `R² mod p` constants verified via field arithmetic: converting the
    /// canonical value 1 must give Montgomery limbs equal to `R`.
    #[test]
    fn r2_constants_round_trip() {
        let one = F128::from_canonical_limbs([1, 0]).unwrap();
        assert_eq!(one, F128::ONE);
        let one = F220::from_canonical_limbs([1, 0, 0, 0]).unwrap();
        assert_eq!(one, F220::ONE);
        let one = F61::from_canonical_limbs([1]).unwrap();
        assert_eq!(one, F61::ONE);
    }

    /// The generator constant must be a quadratic non-residue:
    /// `g^((p−1)/2) == −1`.
    #[test]
    fn generator_is_nonresidue() {
        fn check<F: PrimeField>() {
            let g = F::multiplicative_generator();
            let mut exp = F::modulus_words();
            // (p − 1) / 2: p is odd so subtracting one clears bit 0.
            exp[0] -= 1;
            let mut carry = 0u64;
            for w in exp.iter_mut().rev() {
                let new_carry = *w & 1;
                *w = (*w >> 1) | (carry << 63);
                carry = new_carry;
            }
            assert_eq!(g.pow_words(&exp), -F::ONE);
        }
        check::<F61>();
        check::<F128>();
        check::<F220>();
    }
}
