//! The [`Field`] and [`PrimeField`] abstractions, and the compile-time
//! parameter table ([`FpParams`]) that instantiates a concrete prime field.

use core::fmt::{Debug, Display};
use core::hash::Hash;
use core::iter::{Product, Sum};
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// An element of a finite field.
///
/// Implementors are plain `Copy` value types with unique (canonical) internal
/// representations, so `Eq`/`Hash` behave as mathematical equality.
pub trait Field:
    Copy
    + Clone
    + Debug
    + Display
    + Default
    + Eq
    + PartialEq
    + Hash
    + Send
    + Sync
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum
    + Product
{
    /// The additive identity.
    const ZERO: Self;

    /// The multiplicative identity.
    const ONE: Self;

    /// Returns `true` if this element is the additive identity.
    fn is_zero(&self) -> bool;

    /// Returns `self * self`.
    fn square(&self) -> Self;

    /// Returns `self + self`.
    fn double(&self) -> Self;

    /// Returns the multiplicative inverse, or `None` for zero.
    fn inverse(&self) -> Option<Self>;

    /// Raises `self` to the power `exp`.
    fn pow(&self, exp: u64) -> Self;

    /// Embeds an unsigned integer, reducing it modulo the field
    /// characteristic.
    fn from_u64(value: u64) -> Self;

    /// Embeds a signed integer (negative values map to `p - |value|`).
    fn from_i64(value: i64) -> Self {
        if value < 0 {
            -Self::from_u64(value.unsigned_abs())
        } else {
            Self::from_u64(value as u64)
        }
    }

    /// Embeds a 128-bit unsigned integer, reducing it modulo the field
    /// characteristic.
    fn from_u128(value: u128) -> Self {
        // 2^64 = (2^32)^2 as a field element.
        let shift = Self::from_u64(1 << 32).square();
        Self::from_u64((value >> 64) as u64) * shift + Self::from_u64(value as u64)
    }

    /// Samples a uniformly random field element, drawing 64-bit words from
    /// the supplied entropy source (rejection sampling).
    ///
    /// Keeping the entropy source abstract lets both `rand` RNGs (tests) and
    /// the ChaCha PRG from `zaatar-crypto` (the protocol's query generator,
    /// §5.1) drive sampling without this crate depending on either.
    fn random_from<F: FnMut() -> u64>(next_u64: F) -> Self;
}

/// A prime-order field `F_p` with access to its modulus and 2-adic structure.
pub trait PrimeField: Field {
    /// Bit length of the modulus.
    const NUM_BITS: u32;

    /// Largest `s` such that `2^s` divides `p − 1`.
    const TWO_ADICITY: u32;

    /// Number of 64-bit words in the canonical representation.
    const NUM_WORDS: usize;

    /// The modulus, as little-endian 64-bit words.
    fn modulus_words() -> Vec<u64>;

    /// An element of multiplicative order exactly `2^TWO_ADICITY`.
    fn two_adic_root_of_unity() -> Self;

    /// A quadratic non-residue (used to derive roots of unity).
    fn multiplicative_generator() -> Self;

    /// Raises `self` to a multi-word exponent (little-endian words).
    fn pow_words(&self, exp: &[u64]) -> Self;

    /// Returns the canonical (non-Montgomery) little-endian words.
    fn to_canonical_words(&self) -> Vec<u64>;

    /// Builds an element from canonical little-endian words; `None` if the
    /// value is not fully reduced (`>= p`) or has the wrong length.
    fn from_canonical_words(words: &[u64]) -> Option<Self>;

    /// Serializes to canonical little-endian bytes (`8 * NUM_WORDS` bytes).
    fn to_bytes_le(&self) -> Vec<u8> {
        self.to_canonical_words()
            .iter()
            .flat_map(|w| w.to_le_bytes())
            .collect()
    }

    /// Deserializes from canonical little-endian bytes.
    fn from_bytes_le(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != 8 * Self::NUM_WORDS {
            return None;
        }
        let words: Vec<u64> = bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("chunk is 8 bytes")))
            .collect();
        Self::from_canonical_words(&words)
    }

    /// Returns `p − 1` divided by `2^k` as an exponent, useful for computing
    /// roots of unity of order `2^k`.
    fn root_of_unity_of_order(log2_order: u32) -> Option<Self> {
        if log2_order > Self::TWO_ADICITY {
            return None;
        }
        let mut root = Self::two_adic_root_of_unity();
        for _ in 0..(Self::TWO_ADICITY - log2_order) {
            root = root.square();
        }
        Some(root)
    }
}

/// Compile-time parameters defining a concrete prime field with an `N`-word
/// Montgomery representation (`R = 2^(64N)`).
///
/// The constant tables for the shipped fields were generated offline (see
/// `params.rs` for the exact values and the derivation notes).
pub trait FpParams<const N: usize>:
    Copy + Clone + Debug + Default + Eq + PartialEq + Hash + Send + Sync + 'static
{
    /// The prime modulus `p`, little-endian words. Must be odd and `< 2^(64N)`.
    const MODULUS: [u64; N];

    /// `R mod p` where `R = 2^(64N)` — the Montgomery form of one.
    const R: [u64; N];

    /// `R² mod p`, used to convert into Montgomery form.
    const R2: [u64; N];

    /// `−p⁻¹ mod 2⁶⁴`, the Montgomery reduction constant.
    const INV: u64;

    /// Bit length of `p`.
    const NUM_BITS: u32;

    /// 2-adicity of `p − 1`.
    const TWO_ADICITY: u32;

    /// A small quadratic non-residue (canonical value).
    const GENERATOR: u64;

    /// A `2^TWO_ADICITY`-th primitive root of unity (canonical words).
    const ROOT_OF_UNITY: [u64; N];
}
