//! Batch inversion (Montgomery's trick).
//!
//! The verifier's query-construction step inverts one field element per
//! constraint when computing barycentric weights (§A.3); batching turns
//! `n` inversions into one inversion plus `3n` multiplications, which is the
//! difference between `f_div` and `f` dominating that cost line.

use crate::traits::Field;

/// Inverts every non-zero element of `values` in place using a single field
/// inversion; zero entries are left as zero.
///
/// # Examples
///
/// ```
/// use zaatar_field::{batch_inverse, F61, Field};
///
/// let mut xs: Vec<F61> = (1..=4u64).map(F61::from_u64).collect();
/// batch_inverse(&mut xs);
/// assert_eq!(xs[2] * F61::from_u64(3), F61::ONE);
/// ```
pub fn batch_inverse<F: Field>(values: &mut [F]) {
    let mut prefix = Vec::with_capacity(values.len());
    batch_inverse_into(values, &mut prefix);
}

/// [`batch_inverse`] with a caller-supplied buffer for the prefix
/// products, so hot loops (the staged prover's workspace) can run the
/// trick without a fresh allocation per call. `prefix` is cleared and
/// refilled; its contents afterwards are an implementation detail.
pub fn batch_inverse_into<F: Field>(values: &mut [F], prefix: &mut Vec<F>) {
    // Forward pass: prefix products of the non-zero entries.
    prefix.clear();
    prefix.reserve(values.len());
    let mut acc = F::ONE;
    for v in values.iter() {
        prefix.push(acc);
        if !v.is_zero() {
            acc *= *v;
        }
    }
    let mut inv = match acc.inverse() {
        Some(inv) => inv,
        // All entries zero: nothing to do.
        None => return,
    };
    // Backward pass: peel off one element at a time.
    for (v, p) in values.iter_mut().zip(prefix.iter()).rev() {
        if v.is_zero() {
            continue;
        }
        let this = inv * *p;
        inv *= *v;
        *v = this;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Field, F128, F61};

    #[test]
    fn inverts_all_elements() {
        let orig: Vec<F128> = (1..=20u64).map(|i| F128::from_u64(i * i + 1)).collect();
        let mut inv = orig.clone();
        batch_inverse(&mut inv);
        for (a, b) in orig.iter().zip(inv.iter()) {
            assert_eq!(*a * *b, F128::ONE);
        }
    }

    #[test]
    fn skips_zeros() {
        let mut xs = vec![
            F61::from_u64(2),
            F61::ZERO,
            F61::from_u64(4),
            F61::ZERO,
            F61::from_u64(8),
        ];
        batch_inverse(&mut xs);
        assert_eq!(xs[0] * F61::from_u64(2), F61::ONE);
        assert!(xs[1].is_zero());
        assert_eq!(xs[2] * F61::from_u64(4), F61::ONE);
        assert!(xs[3].is_zero());
        assert_eq!(xs[4] * F61::from_u64(8), F61::ONE);
    }

    #[test]
    fn empty_and_all_zero() {
        let mut empty: Vec<F61> = vec![];
        batch_inverse(&mut empty);
        let mut zeros = vec![F61::ZERO; 5];
        batch_inverse(&mut zeros);
        assert!(zeros.iter().all(|z| z.is_zero()));
    }

    #[test]
    fn single_element() {
        let mut xs = vec![F61::from_u64(7)];
        batch_inverse(&mut xs);
        assert_eq!(xs[0], F61::from_u64(7).inverse().unwrap());
    }

    #[test]
    fn into_variant_matches_and_reuses_buffer() {
        let orig: Vec<F61> = vec![3, 0, 9, 14, 0, 61]
            .into_iter()
            .map(F61::from_u64)
            .collect();
        let mut a = orig.clone();
        batch_inverse(&mut a);
        let mut scratch: Vec<F61> = Vec::new();
        let mut b = orig.clone();
        batch_inverse_into(&mut b, &mut scratch);
        assert_eq!(a, b);
        let cap = scratch.capacity();
        // A second run over the same shape must not regrow the buffer.
        let mut c = orig.clone();
        batch_inverse_into(&mut c, &mut scratch);
        assert_eq!(a, c);
        assert_eq!(scratch.capacity(), cap);
    }
}
