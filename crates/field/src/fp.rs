//! Generic Montgomery-form prime field element, [`Fp`].
//!
//! The element is stored as `a · R mod p` for `R = 2^(64N)`; multiplication
//! uses the CIOS (coarsely integrated operand scanning) algorithm, which is
//! correct for any odd modulus `p < 2^(64N)` — including our moduli, which
//! sit within a few parts per 2³² of `2^(64N)` and therefore leave no spare
//! top bits.

use core::fmt;
use core::hash::{Hash, Hasher};
use core::iter::{Product, Sum};
use core::marker::PhantomData;
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use crate::limbs::{adc, add_assign, geq, is_zero, mac, shr1, sub_assign};
use crate::traits::{Field, FpParams, PrimeField};

/// An element of the prime field described by `P`, in Montgomery form.
///
/// The representation is always fully reduced (`< p`), so derived equality
/// and hashing coincide with field equality.
pub struct Fp<P, const N: usize> {
    limbs: [u64; N],
    _marker: PhantomData<P>,
}

impl<P: FpParams<N>, const N: usize> Fp<P, N> {
    /// Constructs an element directly from Montgomery-form limbs.
    ///
    /// Internal use only; callers must guarantee `limbs < p`.
    #[inline]
    const fn from_mont(limbs: [u64; N]) -> Self {
        Fp {
            limbs,
            _marker: PhantomData,
        }
    }

    /// Montgomery multiplication: returns `a · b / R mod p` (CIOS).
    #[inline]
    fn mont_mul(a: &[u64; N], b: &[u64; N]) -> [u64; N] {
        let mut t = [0u64; N];
        let mut t_n: u64 = 0;
        let mut t_n1: u64 = 0;
        for bi in b.iter().take(N) {
            // Multiplication step: t += a * b[i].
            let mut carry = 0;
            for j in 0..N {
                let (lo, c) = mac(t[j], a[j], *bi, carry);
                t[j] = lo;
                carry = c;
            }
            let (lo, c) = adc(t_n, carry, 0);
            t_n = lo;
            t_n1 = c;

            // Reduction step: make t divisible by 2^64 and shift down.
            let m = t[0].wrapping_mul(P::INV);
            let (_, mut carry) = mac(t[0], m, P::MODULUS[0], 0);
            for j in 1..N {
                let (lo, c) = mac(t[j], m, P::MODULUS[j], carry);
                t[j - 1] = lo;
                carry = c;
            }
            let (lo, c) = adc(t_n, carry, 0);
            t[N - 1] = lo;
            t_n = t_n1 + c;
            t_n1 = 0;
        }
        let _ = t_n1;
        // The intermediate value is < 2p, so one conditional subtraction
        // fully reduces; a set overflow word t_n cancels against the borrow.
        let mut r = t;
        if t_n == 1 || geq(&r, &P::MODULUS) {
            sub_assign(&mut r, &P::MODULUS);
        }
        r
    }

    /// Returns the canonical limbs (out of Montgomery form).
    #[inline]
    pub fn canonical_limbs(&self) -> [u64; N] {
        let mut one = [0u64; N];
        one[0] = 1;
        Self::mont_mul(&self.limbs, &one)
    }

    /// Builds an element from canonical limbs, which must be `< p`.
    #[inline]
    pub fn from_canonical_limbs(limbs: [u64; N]) -> Option<Self> {
        if geq(&limbs, &P::MODULUS) && !is_zero(&P::MODULUS) {
            return None;
        }
        Some(Self::from_mont(Self::mont_mul(&limbs, &P::R2)))
    }

    /// Raw Montgomery limbs (for serialization-free inspection in tests).
    #[inline]
    pub fn mont_limbs(&self) -> [u64; N] {
        self.limbs
    }
}

impl<P, const N: usize> Clone for Fp<P, N> {
    #[inline]
    fn clone(&self) -> Self {
        *self
    }
}

impl<P, const N: usize> Copy for Fp<P, N> {}

impl<P, const N: usize> PartialEq for Fp<P, N> {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        self.limbs == other.limbs
    }
}

impl<P, const N: usize> Eq for Fp<P, N> {}

impl<P, const N: usize> Hash for Fp<P, N> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.limbs.hash(state);
    }
}

impl<P: FpParams<N>, const N: usize> Default for Fp<P, N> {
    fn default() -> Self {
        Self::ZERO
    }
}

impl<P: FpParams<N>, const N: usize> fmt::Debug for Fp<P, N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl<P: FpParams<N>, const N: usize> fmt::Display for Fp<P, N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let canon = self.canonical_limbs();
        write!(f, "0x")?;
        let mut started = false;
        for limb in canon.iter().rev() {
            if started {
                write!(f, "{limb:016x}")?;
            } else if *limb != 0 {
                write!(f, "{limb:x}")?;
                started = true;
            }
        }
        if !started {
            write!(f, "0")?;
        }
        Ok(())
    }
}

impl<P: FpParams<N>, const N: usize> Add for Fp<P, N> {
    type Output = Self;

    #[inline]
    fn add(mut self, rhs: Self) -> Self {
        let carry = add_assign(&mut self.limbs, &rhs.limbs);
        if carry == 1 || geq(&self.limbs, &P::MODULUS) {
            sub_assign(&mut self.limbs, &P::MODULUS);
        }
        self
    }
}

impl<P: FpParams<N>, const N: usize> Sub for Fp<P, N> {
    type Output = Self;

    #[inline]
    fn sub(mut self, rhs: Self) -> Self {
        let borrow = sub_assign(&mut self.limbs, &rhs.limbs);
        if borrow == 1 {
            add_assign(&mut self.limbs, &P::MODULUS);
        }
        self
    }
}

impl<P: FpParams<N>, const N: usize> Mul for Fp<P, N> {
    type Output = Self;

    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Self::from_mont(Self::mont_mul(&self.limbs, &rhs.limbs))
    }
}

impl<P: FpParams<N>, const N: usize> Div for Fp<P, N> {
    type Output = Self;

    /// Division by the inverse.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // Division IS multiplication by the inverse.
    fn div(self, rhs: Self) -> Self {
        self * rhs.inverse().expect("division by zero field element")
    }
}

impl<P: FpParams<N>, const N: usize> Neg for Fp<P, N> {
    type Output = Self;

    #[inline]
    fn neg(self) -> Self {
        if is_zero(&self.limbs) {
            self
        } else {
            let mut r = P::MODULUS;
            sub_assign(&mut r, &self.limbs);
            Self::from_mont(r)
        }
    }
}

impl<P: FpParams<N>, const N: usize> AddAssign for Fp<P, N> {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl<P: FpParams<N>, const N: usize> SubAssign for Fp<P, N> {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl<P: FpParams<N>, const N: usize> MulAssign for Fp<P, N> {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl<P: FpParams<N>, const N: usize> DivAssign for Fp<P, N> {
    #[inline]
    fn div_assign(&mut self, rhs: Self) {
        *self = *self / rhs;
    }
}

impl<P: FpParams<N>, const N: usize> Sum for Fp<P, N> {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ZERO, |acc, x| acc + x)
    }
}

impl<P: FpParams<N>, const N: usize> Product for Fp<P, N> {
    fn product<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ONE, |acc, x| acc * x)
    }
}

impl<P: FpParams<N>, const N: usize> Field for Fp<P, N> {
    const ZERO: Self = Fp {
        limbs: [0u64; N],
        _marker: PhantomData,
    };

    const ONE: Self = Fp {
        limbs: P::R,
        _marker: PhantomData,
    };

    #[inline]
    fn is_zero(&self) -> bool {
        is_zero(&self.limbs)
    }

    #[inline]
    fn square(&self) -> Self {
        *self * *self
    }

    #[inline]
    fn double(&self) -> Self {
        *self + *self
    }

    fn inverse(&self) -> Option<Self> {
        if self.is_zero() {
            return None;
        }
        // Binary extended GCD on the Montgomery representation
        // (Kaliski-style): for input a·R it computes a⁻¹·R directly.
        //
        // Invariants, with u,v shrinking and b,c tracking cofactors:
        //   u ≡ (a·R)·b·R⁻¹  and  v ≡ (a·R)·c·R⁻¹  (mod p)
        // so when u reaches 1, b = R·(a·R)⁻¹·1 ... more simply: we run
        // the classic algorithm over the raw limbs; the R factors cancel
        // so the result is the inverse of the *Montgomery form* times R²,
        // i.e. converting via two Montgomery multiplications at the end
        // restores the right form. To keep the code auditable we instead
        // run on the canonical value and convert back, which costs two
        // extra Montgomery multiplications but has a single obvious
        // invariant: u·x ≡ b (mod p) and v·x ≡ c (mod p).
        let x = self.canonical_limbs();
        let mut u = x;
        let mut v = P::MODULUS;
        // b, c are field elements (Montgomery form): b = 1, c = 0.
        let mut b = Self::ONE;
        let mut c = Self::ZERO;
        // Precompute 1/2 as a field element: (p+1)/2.
        let half = {
            let mut h = P::MODULUS;
            // (p + 1) / 2: p odd, so add 1 (no overflow past N words
            // because p < 2^(64N) and p+1 ≤ 2^(64N); handle the carry by
            // shifting with it).
            let carry = {
                let mut one = [0u64; N];
                one[0] = 1;
                add_assign(&mut h, &one)
            };
            // Shift right one bit, feeding the carry into the top.
            let mut prev = carry;
            for w in h.iter_mut().rev() {
                let lsb = *w & 1;
                *w = (*w >> 1) | (prev << 63);
                prev = lsb;
            }
            Self::from_mont(Self::mont_mul(&h, &P::R2))
        };
        while !is_zero(&u) {
            if u[0] & 1 == 0 {
                shr1(&mut u);
                b *= half;
            } else if v[0] & 1 == 0 {
                shr1(&mut v);
                c *= half;
            } else if geq(&u, &v) {
                sub_assign(&mut u, &v);
                shr1(&mut u);
                b -= c;
                b *= half;
            } else {
                sub_assign(&mut v, &u);
                shr1(&mut v);
                c -= b;
                c *= half;
            }
        }
        // gcd(x, p) = v must be 1 (p prime, x != 0), with c ≡ x⁻¹.
        let mut one = [0u64; N];
        one[0] = 1;
        debug_assert_eq!(v, one, "modulus must be prime");
        Some(c)
    }

    fn pow(&self, exp: u64) -> Self {
        self.pow_words(&[exp])
    }

    fn from_u64(value: u64) -> Self {
        let mut limbs = [0u64; N];
        limbs[0] = value;
        // For single-word moduli the input may exceed p; since our smallest
        // modulus has 61 bits, at most 8 subtractions are needed.
        while geq(&limbs, &P::MODULUS) {
            sub_assign(&mut limbs, &P::MODULUS);
        }
        Self::from_mont(Self::mont_mul(&limbs, &P::R2))
    }

    fn random_from<F: FnMut() -> u64>(mut next_u64: F) -> Self {
        let top_bits = P::NUM_BITS - 64 * (N as u32 - 1);
        let mask = if top_bits == 64 {
            u64::MAX
        } else {
            (1u64 << top_bits) - 1
        };
        loop {
            let mut limbs = [0u64; N];
            for limb in limbs.iter_mut() {
                *limb = next_u64();
            }
            limbs[N - 1] &= mask;
            if !geq(&limbs, &P::MODULUS) {
                return Self::from_mont(Self::mont_mul(&limbs, &P::R2));
            }
        }
    }
}

impl<P: FpParams<N>, const N: usize> PrimeField for Fp<P, N> {
    const NUM_BITS: u32 = P::NUM_BITS;
    const TWO_ADICITY: u32 = P::TWO_ADICITY;
    const NUM_WORDS: usize = N;

    fn modulus_words() -> Vec<u64> {
        P::MODULUS.to_vec()
    }

    fn two_adic_root_of_unity() -> Self {
        Self::from_canonical_limbs(P::ROOT_OF_UNITY).expect("root-of-unity constant is reduced")
    }

    fn multiplicative_generator() -> Self {
        Self::from_u64(P::GENERATOR)
    }

    fn pow_words(&self, exp: &[u64]) -> Self {
        let mut padded = vec![0u64; exp.len()];
        padded.copy_from_slice(exp);
        let high = match exp
            .iter()
            .enumerate()
            .rev()
            .find(|(_, w)| **w != 0)
            .map(|(i, w)| i * 64 + 63 - w.leading_zeros() as usize)
        {
            Some(h) => h,
            None => return Self::ONE,
        };
        let mut acc = Self::ONE;
        for i in (0..=high).rev() {
            acc = acc.square();
            if (exp[i / 64] >> (i % 64)) & 1 == 1 {
                acc *= *self;
            }
        }
        acc
    }

    fn to_canonical_words(&self) -> Vec<u64> {
        self.canonical_limbs().to_vec()
    }

    fn from_canonical_words(words: &[u64]) -> Option<Self> {
        if words.len() != N {
            return None;
        }
        let mut limbs = [0u64; N];
        limbs.copy_from_slice(words);
        Self::from_canonical_limbs(limbs)
    }
}

#[cfg(test)]
mod tests {
    use crate::{Field, PrimeField, F128, F220, F61};

    /// Reference arithmetic for the 61-bit field via u128.
    const P61: u128 = 0x1ffffff900000001;

    fn f61(x: u128) -> F61 {
        F61::from_u128(x)
    }

    #[test]
    fn f61_matches_reference_mul() {
        let cases: [(u128, u128); 4] = [
            (3, 5),
            (P61 - 1, P61 - 1),
            (0x1234_5678_9abc_def0, 0x0fed_cba9_8765_4321),
            (P61 - 2, 7),
        ];
        for (a, b) in cases {
            let expect = (a % P61) * (b % P61) % P61;
            assert_eq!(f61(a) * f61(b), f61(expect), "a={a} b={b}");
        }
    }

    #[test]
    fn f61_matches_reference_add_sub() {
        let a = 0x1fff_fff8_ffff_fff0u128;
        let b = 0x1fff_fff8_0000_0123u128;
        assert_eq!(f61(a) + f61(b), f61((a + b) % P61));
        assert_eq!(f61(a) - f61(b), f61((a + P61 - b) % P61));
        assert_eq!(f61(b) - f61(a), f61((b + P61 - a) % P61));
    }

    #[test]
    fn one_and_zero_identities() {
        fn check<F: Field>() {
            let x = F::from_u64(0xdead_beef);
            assert_eq!(x + F::ZERO, x);
            assert_eq!(x * F::ONE, x);
            assert_eq!(x * F::ZERO, F::ZERO);
            assert_eq!(x - x, F::ZERO);
            assert!(F::ZERO.is_zero());
            assert!(!F::ONE.is_zero());
        }
        check::<F61>();
        check::<F128>();
        check::<F220>();
    }

    #[test]
    fn inverse_round_trips() {
        fn check<F: Field>() {
            for v in [1u64, 2, 3, 0xffff_ffff, 0xdead_beef_cafe_f00d] {
                let x = F::from_u64(v);
                let inv = x.inverse().expect("nonzero");
                assert_eq!(x * inv, F::ONE, "v={v}");
            }
            assert!(F::ZERO.inverse().is_none());
        }
        check::<F61>();
        check::<F128>();
        check::<F220>();
    }

    #[test]
    fn negation_is_additive_inverse() {
        fn check<F: Field>() {
            let x = F::from_u64(0x1234_5678);
            assert_eq!(x + (-x), F::ZERO);
            assert_eq!(-F::ZERO, F::ZERO);
        }
        check::<F61>();
        check::<F128>();
        check::<F220>();
    }

    #[test]
    fn from_i64_embeds_negatives() {
        fn check<F: Field>() {
            assert_eq!(F::from_i64(-5) + F::from_u64(5), F::ZERO);
            assert_eq!(F::from_i64(7), F::from_u64(7));
            assert_eq!(F::from_i64(i64::MIN) + F::from_u64(1 << 63), F::ZERO);
        }
        check::<F61>();
        check::<F128>();
        check::<F220>();
    }

    #[test]
    fn pow_matches_repeated_multiplication() {
        fn check<F: Field>() {
            let x = F::from_u64(3);
            let mut acc = F::ONE;
            for e in 0..20u64 {
                assert_eq!(x.pow(e), acc, "e={e}");
                acc *= x;
            }
        }
        check::<F61>();
        check::<F128>();
        check::<F220>();
    }

    #[test]
    fn root_of_unity_has_correct_order() {
        fn check<F: PrimeField>() {
            let w = F::two_adic_root_of_unity();
            let mut acc = w;
            // w^(2^TWO_ADICITY) == 1 and w^(2^(TWO_ADICITY-1)) == -1.
            for _ in 0..F::TWO_ADICITY - 1 {
                acc = acc.square();
            }
            assert_eq!(acc, -F::ONE);
            assert_eq!(acc.square(), F::ONE);
        }
        check::<F61>();
        check::<F128>();
        check::<F220>();
    }

    #[test]
    fn small_order_roots() {
        let w = F128::root_of_unity_of_order(3).unwrap();
        assert_eq!(w.pow(8), F128::ONE);
        assert_ne!(w.pow(4), F128::ONE);
        assert!(F128::root_of_unity_of_order(64).is_none());
    }

    #[test]
    fn serialization_round_trips() {
        fn check<F: PrimeField>() {
            let x = F::from_u64(0xfeed_face_dead_beef).pow(3);
            let bytes = x.to_bytes_le();
            assert_eq!(bytes.len(), 8 * F::NUM_WORDS);
            assert_eq!(F::from_bytes_le(&bytes), Some(x));
        }
        check::<F61>();
        check::<F128>();
        check::<F220>();
    }

    #[test]
    fn from_bytes_rejects_unreduced() {
        let mut bytes = vec![0xffu8; 16];
        // All-ones is >= p for F128 (p < 2^128).
        assert!(F128::from_bytes_le(&bytes).is_none());
        bytes.push(0);
        assert!(F128::from_bytes_le(&bytes).is_none(), "wrong length");
    }

    #[test]
    fn random_sampling_is_reduced_and_varied() {
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let a = F220::random_from(&mut next);
        let b = F220::random_from(&mut next);
        assert_ne!(a, b);
        // Round-tripping through canonical words proves reducedness.
        assert_eq!(
            F220::from_canonical_words(&a.to_canonical_words()),
            Some(a)
        );
    }

    #[test]
    fn display_formats_canonical_hex() {
        assert_eq!(format!("{}", F128::from_u64(0x1f)), "0x1f");
        assert_eq!(format!("{}", F128::ZERO), "0x0");
        let big = F128::from_u128(0x0123_4567_89ab_cdef_0011_2233_4455_6677);
        assert_eq!(format!("{big}"), "0x123456789abcdef0011223344556677");
    }

    #[test]
    fn from_u128_consistent_with_words() {
        let v = 0xaaaa_bbbb_cccc_dddd_1111_2222_3333_4444u128;
        let x = F220::from_u128(v);
        let words = x.to_canonical_words();
        assert_eq!(words[0], v as u64);
        assert_eq!(words[1], (v >> 64) as u64);
        assert_eq!(words[2], 0);
    }

    #[test]
    fn sum_and_product_fold() {
        let xs: Vec<F61> = (1..=5u64).map(F61::from_u64).collect();
        let s: F61 = xs.iter().copied().sum();
        let p: F61 = xs.iter().copied().product();
        assert_eq!(s, F61::from_u64(15));
        assert_eq!(p, F61::from_u64(120));
    }

    #[test]
    fn division_is_mul_by_inverse() {
        let a = F128::from_u64(84);
        let b = F128::from_u64(2);
        assert_eq!(a / b, F128::from_u64(42));
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_zero_panics() {
        let _ = F128::ONE / F128::ZERO;
    }
}
