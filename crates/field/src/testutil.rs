//! Deterministic test-input generation shared by the property and
//! differential test harnesses across the workspace (the build must work
//! offline, so no external proptest/rand dependency). Not a CSPRNG.

use crate::Field;

/// A splitmix64 sequence with a fixed seed: the standard stand-in for a
/// property-test generator in this repo.
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// Starts the sequence at `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A value in `lo..hi` (upper bound exclusive; modulo bias is fine
    /// for test generation).
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next_u64() % (hi - lo)
    }

    /// A uniform-ish field element.
    pub fn field<F: Field>(&mut self) -> F {
        F::random_from(|| self.next_u64())
    }

    /// `n` field elements.
    pub fn field_vec<F: Field>(&mut self, n: usize) -> Vec<F> {
        (0..n).map(|_| self.field()).collect()
    }
}
