//! Finite-field arithmetic for the Zaatar verified-computation stack.
//!
//! The paper (§5.1) runs its protocol over prime fields of two sizes: a
//! 128-bit prime modulus for integer benchmarks and a 220-bit modulus for the
//! rational-arithmetic benchmark (root finding by bisection). This crate
//! provides from-scratch implementations of both, plus a small 61-bit field
//! used to keep unit tests and property tests fast.
//!
//! All fields are instantiations of a single generic Montgomery-form
//! representation, [`Fp`], parameterized by a compile-time constant table
//! ([`FpParams`]). The concrete moduli were chosen to be *FFT-friendly*
//! (`p = c·2³² + 1`) so that the QAP polynomial arithmetic in `zaatar-poly`
//! can use radix-2 NTTs; DESIGN.md §3 documents why this substitution is
//! sound with respect to the paper's protocol.
//!
//! # Examples
//!
//! ```
//! use zaatar_field::{F128, Field};
//!
//! let a = F128::from_u64(7);
//! let b = F128::from_u64(6);
//! assert_eq!(a * b, F128::from_u64(42));
//! assert_eq!(a * a.inverse().unwrap(), F128::ONE);
//! ```

pub mod batch;
pub mod fp;
pub mod limbs;
pub mod params;
pub mod testutil;
pub mod traits;

pub use batch::{batch_inverse, batch_inverse_into};
pub use fp::Fp;
pub use params::{F128Params, F220Params, F61Params};
pub use traits::{Field, FpParams, PrimeField};

/// The 128-bit field used for the integer benchmarks (§5.1).
///
/// `p = 0xfffffffffffffffffffffff700000001`, a 128-bit prime with
/// 2-adicity 32.
pub type F128 = Fp<F128Params, 2>;

/// The 220-bit field used for the rational-arithmetic benchmark (§5.1).
///
/// `p = 0xffffffffffffffffffffffffffffffffffffffffffffffd00000001`, a
/// 220-bit prime with 2-adicity 32.
pub type F220 = Fp<F220Params, 4>;

/// A 61-bit test field (`p = 0x1ffffff900000001`), small enough that
/// reference computations fit in `u128`, used to cross-check the generic
/// Montgomery machinery.
pub type F61 = Fp<F61Params, 1>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_sizes() {
        assert_eq!(<F128 as PrimeField>::NUM_BITS, 128);
        assert_eq!(<F220 as PrimeField>::NUM_BITS, 220);
        assert_eq!(<F61 as PrimeField>::NUM_BITS, 61);
    }
}
