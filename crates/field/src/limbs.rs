//! Primitive multi-word (`[u64; N]`) arithmetic helpers.
//!
//! These are the carry-propagating building blocks used by the Montgomery
//! arithmetic in [`crate::fp`]. All helpers are branch-light and operate on
//! fixed-size limb arrays in little-endian limb order.

/// Computes `a + b + carry`, returning the low word and the new carry.
#[inline(always)]
pub const fn adc(a: u64, b: u64, carry: u64) -> (u64, u64) {
    let t = a as u128 + b as u128 + carry as u128;
    (t as u64, (t >> 64) as u64)
}

/// Computes `a - b - borrow`, returning the low word and the new borrow
/// (0 or 1).
#[inline(always)]
pub const fn sbb(a: u64, b: u64, borrow: u64) -> (u64, u64) {
    let t = (a as u128).wrapping_sub(b as u128 + borrow as u128);
    (t as u64, ((t >> 64) as u64) & 1)
}

/// Computes `acc + a * b + carry`, returning the low word and the new carry.
#[inline(always)]
pub const fn mac(acc: u64, a: u64, b: u64, carry: u64) -> (u64, u64) {
    let t = acc as u128 + (a as u128) * (b as u128) + carry as u128;
    (t as u64, (t >> 64) as u64)
}

/// Adds `b` into `a`, returning the final carry out.
#[inline]
pub fn add_assign<const N: usize>(a: &mut [u64; N], b: &[u64; N]) -> u64 {
    let mut carry = 0;
    for i in 0..N {
        let (lo, c) = adc(a[i], b[i], carry);
        a[i] = lo;
        carry = c;
    }
    carry
}

/// Subtracts `b` from `a`, returning the final borrow out.
#[inline]
pub fn sub_assign<const N: usize>(a: &mut [u64; N], b: &[u64; N]) -> u64 {
    let mut borrow = 0;
    for i in 0..N {
        let (lo, bo) = sbb(a[i], b[i], borrow);
        a[i] = lo;
        borrow = bo;
    }
    borrow
}

/// Returns `true` if `a >= b` when both are interpreted as little-endian
/// multi-word integers.
#[inline]
pub fn geq<const N: usize>(a: &[u64; N], b: &[u64; N]) -> bool {
    for i in (0..N).rev() {
        if a[i] > b[i] {
            return true;
        }
        if a[i] < b[i] {
            return false;
        }
    }
    true
}

/// Returns `true` if every limb of `a` is zero.
#[inline]
pub fn is_zero<const N: usize>(a: &[u64; N]) -> bool {
    a.iter().all(|&x| x == 0)
}

/// Shifts `a` right by one bit in place.
#[inline]
pub fn shr1<const N: usize>(a: &mut [u64; N]) {
    let mut carry = 0u64;
    for i in (0..N).rev() {
        let next = a[i] << 63;
        a[i] = (a[i] >> 1) | carry;
        carry = next;
    }
}

/// Returns the bit at position `i` (little-endian bit order).
#[inline]
pub fn bit<const N: usize>(a: &[u64; N], i: usize) -> bool {
    (a[i / 64] >> (i % 64)) & 1 == 1
}

/// Returns the position of the highest set bit, or `None` if `a` is zero.
#[inline]
pub fn highest_bit<const N: usize>(a: &[u64; N]) -> Option<usize> {
    for i in (0..N).rev() {
        if a[i] != 0 {
            return Some(i * 64 + 63 - a[i].leading_zeros() as usize);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adc_carries() {
        assert_eq!(adc(u64::MAX, 1, 0), (0, 1));
        assert_eq!(adc(u64::MAX, u64::MAX, 1), (u64::MAX, 1));
        assert_eq!(adc(1, 2, 3), (6, 0));
    }

    #[test]
    fn sbb_borrows() {
        assert_eq!(sbb(0, 1, 0), (u64::MAX, 1));
        assert_eq!(sbb(5, 2, 1), (2, 0));
        assert_eq!(sbb(0, u64::MAX, 1), (0, 1));
    }

    #[test]
    fn mac_max_operands() {
        // The extreme case must not overflow the u128 accumulator.
        let (lo, hi) = mac(u64::MAX, u64::MAX, u64::MAX, u64::MAX);
        // max + max*max + max = 2^128 - 1.
        assert_eq!(lo, u64::MAX);
        assert_eq!(hi, u64::MAX);
    }

    #[test]
    fn add_sub_roundtrip() {
        let a: [u64; 3] = [0xdead_beef, u64::MAX, 7];
        let b: [u64; 3] = [1, u64::MAX, 0];
        let mut c = a;
        let carry = add_assign(&mut c, &b);
        assert_eq!(carry, 0);
        let borrow = sub_assign(&mut c, &b);
        assert_eq!(borrow, 0);
        assert_eq!(c, a);
    }

    #[test]
    fn geq_ordering() {
        assert!(geq(&[1u64, 2], &[5, 1]));
        assert!(!geq(&[5u64, 1], &[1, 2]));
        assert!(geq(&[3u64, 3], &[3, 3]));
    }

    #[test]
    fn shr1_shifts_across_limbs() {
        let mut a: [u64; 2] = [0, 1];
        shr1(&mut a);
        assert_eq!(a, [1 << 63, 0]);
    }

    #[test]
    fn highest_bit_positions() {
        assert_eq!(highest_bit(&[0u64, 0]), None);
        assert_eq!(highest_bit(&[1u64, 0]), Some(0));
        assert_eq!(highest_bit(&[0u64, 0x10]), Some(68));
    }
}
