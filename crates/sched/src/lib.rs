//! Execution policy layer: one calibrated object for every decision the
//! stack used to hardcode or read from scattered globals.
//!
//! The paper evaluates Zaatar *through* an analytic cost model (Fig. 3);
//! `core::cost` reproduces that model, but until this crate nothing
//! consumed it at runtime — worker counts came from a process-global env
//! cache, the parallel-NTT cutoff was a hardcoded constant, and callers
//! hand-picked streaming vs monolithic proving. This crate turns those
//! five choices into one explicit seam:
//!
//! * [`HostProfile`] — what the machine can do: parallelism, a one-time
//!   measured thread spawn/join overhead, and the operator's
//!   `ZAATAR_WORKERS` override (parsed here, once, with a
//!   `sched.env.bad_override` counter on garbage instead of silence).
//! * [`ExecPolicy`] — what one prover run will do: worker count, the
//!   NTT parallel cutoff, packed vs serial answering, monolithic vs
//!   streamed proving (with a derived chunk length), and an optional
//!   MSM window override.
//! * [`Scheduler`] — derives an [`ExecPolicy`] from the workload shape
//!   (circuit size, batch size β, element width), a
//!   [`zaatar_mem::MemBudget`], the host profile, and §5.1 micro costs.
//!
//! Every decision is a pure function of its inputs, so the scheduler is
//! testable with synthetic profiles and paper-table costs — no wall
//! clock anywhere in the decision path. Policy dispatch is
//! byte-transparent to transcripts: a policy changes *where* and *when*
//! work happens (threads, chunks), never the field/group values that
//! reach the wire.

use std::sync::OnceLock;
use std::time::Instant;

use zaatar_mem::MemBudget;

/// The parallel-NTT cutoff policies fall back to when no scheduler ran:
/// the value measured for the in-tree test field before the cutoff
/// became policy (transforms at `log n >= 14` shard their passes).
pub const DEFAULT_NTT_PARALLEL_MIN_LOG2: u32 = 14;

/// Floor/ceiling for the derived NTT cutoff: below 2^10 a transform is
/// too small for any fork to amortize on realistic hosts; above 2^20
/// the work term dominates any plausible spawn overhead, so a larger
/// cutoff would only ever disable parallelism that pays.
const NTT_MIN_LOG2_RANGE: (u32, u32) = (10, 20);

/// How many times the per-pass butterfly work must exceed the measured
/// spawn overhead before the scheduler turns intra-NTT sharding on.
/// Each sharded pass forks and joins once per worker; requiring 8x
/// keeps the fork tax under ~12% of a pass even in the worst case.
const NTT_SPAWN_AMORTIZATION: f64 = 8.0;

/// Monolithic peak residency, in field elements per domain point: the
/// witness vector, three staged A/B/C accumulators, and two 2n coset
/// transform buffers, rounded up by the pool's power-of-two size
/// classes. Measured: 81,920 B at n = 1024 and 327,680 B at n = 4096
/// (8-byte elements) — exactly 10 n elements at both sizes.
const MONO_PEAK_ELEMS_PER_POINT: usize = 10;

/// Streamed-path floor, in elements per domain point: the chunked A/B/C
/// value vectors are still full length (3n) and the quotient drain
/// holds two 2n coset buffers (4n). Measured: 57,344 B = 7 n elements
/// at n = 1024. Chunk length tunes transients above this floor, not
/// the floor itself.
const STREAM_FLOOR_ELEMS_PER_POINT: usize = 7;

/// Smallest chunk the scheduler will derive — below this the per-chunk
/// lease/release traffic dominates the work inside the chunk (the
/// bench's streaming geometry bottomed out at the same value).
const MIN_CHUNK_LEN: usize = 16;

/// Default working-set size above which the streamed pipeline's tiled
/// transforms beat the monolithic path even with no budget in force
/// (measured: monolithic faster at an 80 KiB working set, streamed
/// faster at 320 KiB — the boundary is cache residency, not memory
/// pressure). Overridable per profile for hosts with other cache sizes.
const DEFAULT_CACHE_RESIDENT_BYTES: usize = 256 << 10;

/// Spawn-probe fallback when a measurement is impossible or absurd
/// (e.g. a clock that reports zero): a mid-range value for commodity
/// hosts so derived cutoffs stay sane.
const DEFAULT_SPAWN_OVERHEAD_NS: f64 = 25_000.0;

/// What the machine running this process can do: measured once, cached
/// for the process lifetime, and injectable for tests (every field is
/// plain data — no global state is consulted after construction).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HostProfile {
    /// Hardware threads available to this process
    /// ([`std::thread::available_parallelism`], floor 1).
    pub parallelism: usize,
    /// The operator's `ZAATAR_WORKERS` pin, when set to a positive
    /// integer: replaces every derived or requested worker count
    /// verbatim. `None` when unset or unparsable (the bad parse is
    /// counted, not silently dropped).
    pub worker_override: Option<usize>,
    /// Measured cost of one thread spawn + join, in nanoseconds — the
    /// calibration probe behind every "is forking worth it" decision.
    pub spawn_overhead_ns: f64,
    /// Working-set size above which streaming's tiled transforms win
    /// over the monolithic path on this host (see
    /// [`Scheduler::proving_for`]).
    pub cache_resident_bytes: usize,
}

impl HostProfile {
    /// Probes the host once and caches the result for the process
    /// lifetime: parallelism from the OS, spawn overhead measured by
    /// timing a handful of spawn/join round trips. Does **not** read
    /// the environment — see [`HostProfile::from_env`] for the
    /// operator-override layer.
    pub fn detect() -> HostProfile {
        static PROBED: OnceLock<HostProfile> = OnceLock::new();
        *PROBED.get_or_init(HostProfile::probe)
    }

    /// The profile every in-tree `effective_workers` call consults:
    /// [`HostProfile::detect`] plus the `ZAATAR_WORKERS` environment
    /// override, both read once per process. A bad override value
    /// (unparsable, or zero) increments the `sched.env.bad_override`
    /// counter exactly once and is otherwise treated as unset.
    pub fn from_env() -> HostProfile {
        static CACHED: OnceLock<HostProfile> = OnceLock::new();
        *CACHED.get_or_init(|| {
            HostProfile::detect()
                .with_override_str(std::env::var("ZAATAR_WORKERS").ok().as_deref())
        })
    }

    /// A fully synthetic profile for deterministic tests: no probing,
    /// no environment, default cache threshold.
    pub fn synthetic(parallelism: usize, spawn_overhead_ns: f64) -> HostProfile {
        HostProfile {
            parallelism: parallelism.max(1),
            worker_override: None,
            spawn_overhead_ns,
            cache_resident_bytes: DEFAULT_CACHE_RESIDENT_BYTES,
        }
    }

    /// Applies an override string (the raw `ZAATAR_WORKERS` value, or
    /// an injected one in tests) to this profile. Pure: the environment
    /// is never consulted, so tests can drive every parse path without
    /// process-global env ordering. `Some` garbage or zero counts one
    /// `sched.env.bad_override` and leaves the override unset.
    pub fn with_override_str(mut self, raw: Option<&str>) -> HostProfile {
        self.worker_override = match raw {
            None => None,
            Some(raw) => match raw.trim().parse::<usize>() {
                Ok(w) if w >= 1 => Some(w),
                _ => {
                    zaatar_obs::counter("sched.env.bad_override").inc();
                    None
                }
            },
        };
        self
    }

    /// The worker count actually used for a request of `requested`
    /// workers: the override, when pinned, replaces the request
    /// verbatim; otherwise the request is clamped to the host's
    /// parallelism (oversubscribing cores only buys scheduling
    /// overhead) with a floor of one.
    pub fn effective_workers(&self, requested: usize) -> usize {
        match self.worker_override {
            Some(w) => w,
            None => requested.min(self.parallelism).max(1),
        }
    }

    fn probe() -> HostProfile {
        let parallelism = std::thread::available_parallelism().map_or(1, |n| n.get());
        HostProfile {
            parallelism,
            worker_override: None,
            spawn_overhead_ns: measure_spawn_overhead_ns(),
            cache_resident_bytes: DEFAULT_CACHE_RESIDENT_BYTES,
        }
    }
}

/// Times a few thread spawn + join round trips and returns the mean,
/// in nanoseconds. Runs once per process (behind [`HostProfile::detect`]'s
/// cache); four spawns keep the probe under a millisecond on any host
/// that can run the prover at all.
fn measure_spawn_overhead_ns() -> f64 {
    const ROUNDS: u32 = 4;
    let start = Instant::now();
    for _ in 0..ROUNDS {
        std::thread::spawn(|| {}).join().expect("probe thread");
    }
    let per_spawn = start.elapsed().as_nanos() as f64 / f64::from(ROUNDS);
    if per_spawn <= 0.0 {
        DEFAULT_SPAWN_OVERHEAD_NS
    } else {
        per_spawn
    }
}

/// How a batch's query answers are produced: one serial pass per
/// instance, or the packed matrix kernel sharded across the policy's
/// workers. Both produce identical field values (the packed kernel's
/// re-association is exact), so the choice is cost-only.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Answering {
    /// One serial answer pass per instance.
    Serial,
    /// The packed `BatchQuerySet` kernel across the policy's workers.
    Packed,
}

/// How an instance's proof is constructed: the monolithic staged
/// pipeline (fastest while its working set stays cache-resident, peak
/// residency ~10 elements per domain point) or the chunked streaming
/// pipeline (peak bounded near 7 elements per point plus the chunk).
/// Both produce byte-identical proofs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Proving {
    /// Full-length stage buffers, soft (`take`) leases.
    Monolithic,
    /// Chunked stages with hard (`try_take`) leases of `chunk_len`
    /// field elements at a time.
    Streamed {
        /// Field elements per streamed chunk.
        chunk_len: usize,
    },
}

/// Every execution decision for one prover run, in one place. Plain
/// data: carrying a policy costs a few words, and stamping one on a
/// workspace never changes the bytes any prover path produces.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExecPolicy {
    /// Worker threads for batch-level parallelism (`prove_batch`,
    /// `answer_batch`). Call sites still clamp to the item count.
    pub workers: usize,
    /// Transforms at `log n` at or above this shard their butterfly
    /// passes; below it they stay serial.
    pub ntt_parallel_min_log2: u32,
    /// Serial vs packed query answering.
    pub answering: Answering,
    /// Monolithic vs streamed proof construction.
    pub proving: Proving,
    /// When set, forces the Pippenger MSM window width instead of the
    /// length-derived heuristic — the seam for hosts whose bucket
    /// scratch must be capped below the default. `None` keeps the
    /// self-tuned width.
    pub msm_window_bits_override: Option<usize>,
}

impl ExecPolicy {
    /// The do-nothing-clever policy: one worker, serial answering,
    /// monolithic proving, default NTT cutoff. Matches the behaviour
    /// of every pre-policy serial entry point.
    pub fn serial() -> ExecPolicy {
        ExecPolicy::with_workers(1)
    }

    /// A monolithic policy pinning `workers` (the legacy `prove_batch`
    /// contract: explicit worker count, everything else default).
    pub fn with_workers(workers: usize) -> ExecPolicy {
        ExecPolicy {
            workers: workers.max(1),
            ntt_parallel_min_log2: DEFAULT_NTT_PARALLEL_MIN_LOG2,
            answering: if workers > 1 { Answering::Packed } else { Answering::Serial },
            proving: Proving::Monolithic,
            msm_window_bits_override: None,
        }
    }

    /// A serial streamed policy pinning `chunk_len` (the legacy
    /// `prove_batch_streamed` contract).
    pub fn streamed(chunk_len: usize) -> ExecPolicy {
        ExecPolicy {
            proving: Proving::Streamed { chunk_len: chunk_len.max(1) },
            ..ExecPolicy::serial()
        }
    }
}

impl Default for ExecPolicy {
    fn default() -> Self {
        ExecPolicy::serial()
    }
}

/// The §5.1 microbenchmark costs the scheduler prices work with, in
/// seconds per operation — a mirror of `core::cost::MicroParams`
/// (this crate sits below `core`, so it carries its own copy of the
/// paper-table constants; `core` provides a lossless `From` conversion
/// and a test pinning the two tables equal).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MicroCosts {
    /// Encryption (Enc) cost.
    pub e: f64,
    /// Decryption (Dec) cost.
    pub d: f64,
    /// Ciphertext-add + scalar-multiply (homomorphic op) cost.
    pub h: f64,
    /// Field multiplication cost.
    pub f: f64,
    /// Lazy (deferred-reduction) field multiply-accumulate cost.
    pub f_lazy: f64,
    /// Field division cost.
    pub f_div: f64,
    /// PRG cost per pseudorandom field element.
    pub c: f64,
}

impl MicroCosts {
    /// The paper's measured 128-bit-field column (§5.1).
    pub fn paper_128() -> MicroCosts {
        MicroCosts {
            e: 65e-6,
            d: 170e-6,
            h: 91e-6,
            f: 210e-9,
            f_lazy: 68e-9,
            f_div: 2e-6,
            c: 160e-9,
        }
    }

    /// The paper's measured 220-bit-field column (§5.1).
    pub fn paper_220() -> MicroCosts {
        MicroCosts {
            e: 88e-6,
            d: 170e-6,
            h: 130e-6,
            f: 320e-9,
            f_lazy: 90e-9,
            f_div: 3e-6,
            c: 260e-9,
        }
    }
}

/// The inputs a scheduling decision depends on, per workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WorkloadShape {
    /// QAP domain size `|C_z|` (constraint count; padded to a power of
    /// two internally, matching the transform sizes the prover runs).
    pub domain_size: usize,
    /// Batch size β — instances proved together.
    pub batch: usize,
    /// Bytes per field element (residency predictions scale by this).
    pub elem_bytes: usize,
}

impl WorkloadShape {
    /// The transform size the prover actually runs at: `domain_size`
    /// rounded up to a power of two.
    pub fn padded_domain(&self) -> usize {
        self.domain_size.max(1).next_power_of_two()
    }
}

/// Derives an [`ExecPolicy`] from workload shape, memory budget, host
/// profile, and micro costs. Every method is a pure function of the
/// constructor inputs and its arguments.
#[derive(Clone, Copy, Debug)]
pub struct Scheduler {
    host: HostProfile,
    micro: MicroCosts,
}

impl Scheduler {
    /// A scheduler for `host` pricing work with `micro`.
    pub fn new(host: HostProfile, micro: MicroCosts) -> Scheduler {
        Scheduler { host, micro }
    }

    /// The host profile decisions are made against.
    pub fn host(&self) -> &HostProfile {
        &self.host
    }

    /// The full policy for one workload under `budget`.
    pub fn policy(&self, shape: WorkloadShape, budget: MemBudget) -> ExecPolicy {
        ExecPolicy {
            workers: self.workers_for(shape),
            ntt_parallel_min_log2: self.ntt_parallel_min_log2(),
            answering: if shape.batch > 1 { Answering::Packed } else { Answering::Serial },
            proving: self.proving_for(shape, budget),
            msm_window_bits_override: None,
        }
    }

    /// Predicted monolithic-path peak workspace residency for `shape`,
    /// in bytes (the v8 `stream` section's measured geometry: 10
    /// elements per padded domain point).
    pub fn predicted_monolithic_peak_bytes(shape: WorkloadShape) -> usize {
        MONO_PEAK_ELEMS_PER_POINT * shape.padded_domain() * shape.elem_bytes
    }

    /// Predicted streamed-path residency floor for `shape`, in bytes
    /// (7 elements per padded point; chunk length tunes transients
    /// above this, never below).
    pub fn predicted_streamed_floor_bytes(shape: WorkloadShape) -> usize {
        STREAM_FLOOR_ELEMS_PER_POINT * shape.padded_domain() * shape.elem_bytes
    }

    /// Predicted proof-construction work for one instance, in
    /// nanoseconds: the Fig. 3 Zaatar prover interpolation term
    /// `3 f |C_z| log2 |C_z|` over the padded domain. Absolute accuracy
    /// is irrelevant — only the comparison against measured spawn
    /// overhead is consumed.
    pub fn predicted_instance_ns(&self, shape: WorkloadShape) -> f64 {
        let n = shape.padded_domain() as f64;
        3.0 * self.micro.f * 1e9 * n * n.log2().max(1.0)
    }

    /// Worker count for `shape`: the candidate count minimizing
    /// predicted batch time, where `w` workers split the per-instance
    /// work but pay one spawn/join each. Serial (`w = 1`) is always a
    /// candidate, so the chosen count is never predicted slower than
    /// serial — the ROADMAP "never slower than serial on any host"
    /// rule by construction (on a 1-core host the only candidate is 1).
    /// An operator `ZAATAR_WORKERS` pin wins outright.
    pub fn workers_for(&self, shape: WorkloadShape) -> usize {
        if let Some(w) = self.host.worker_override {
            return w.max(1);
        }
        let max_w = self.host.parallelism.min(shape.batch.max(1));
        let total_ns = self.predicted_instance_ns(shape) * shape.batch.max(1) as f64;
        let mut best = (1usize, total_ns);
        for w in 2..=max_w {
            let est = total_ns / w as f64 + self.host.spawn_overhead_ns * w as f64;
            if est < best.1 {
                best = (w, est);
            }
        }
        best.0
    }

    /// The `log2 n` at which intra-NTT pass sharding starts paying on
    /// this host: the smallest size whose per-pass butterfly work
    /// (~`n` multiplications at the calibrated `f`) covers the
    /// measured spawn overhead [`NTT_SPAWN_AMORTIZATION`] times over,
    /// clamped to a sane range. Cheap fields and slow spawns raise the
    /// cutoff; expensive fields lower it.
    pub fn ntt_parallel_min_log2(&self) -> u32 {
        let mult_ns = (self.micro.f * 1e9).max(1e-3);
        let cutoff_elems = (self.host.spawn_overhead_ns * NTT_SPAWN_AMORTIZATION) / mult_ns;
        let log2 = cutoff_elems.max(1.0).log2().ceil() as u32;
        log2.clamp(NTT_MIN_LOG2_RANGE.0, NTT_MIN_LOG2_RANGE.1)
    }

    /// Monolithic vs streamed proving for `shape` under `budget`:
    /// streamed when the predicted monolithic peak would cross the
    /// budget (the hard constraint), or — with room to spare — when
    /// the working set falls out of cache, where the streamed
    /// pipeline's tiled transforms are measurably faster. Otherwise
    /// monolithic, which wins while cache-resident.
    pub fn proving_for(&self, shape: WorkloadShape, budget: MemBudget) -> Proving {
        let peak = Scheduler::predicted_monolithic_peak_bytes(shape);
        let over_budget = budget.limit_bytes().is_some_and(|limit| peak > limit);
        if over_budget || peak > self.host.cache_resident_bytes {
            Proving::Streamed { chunk_len: self.chunk_len(shape, budget) }
        } else {
            Proving::Monolithic
        }
    }

    /// Chunk length for the streamed pipeline under `budget`: half the
    /// element headroom between the budget and the streamed floor
    /// (half, because the pool's power-of-two size classes can round a
    /// lease up to 2x), clamped to `[16, padded domain]`. With no
    /// budget in force the cache-friendly default is one-eighth of the
    /// domain — eight chunks, enough to keep per-chunk overhead
    /// negligible while the working chunk stays small.
    pub fn chunk_len(&self, shape: WorkloadShape, budget: MemBudget) -> usize {
        let n = shape.padded_domain();
        match budget.limit_bytes() {
            None => (n / 8).max(MIN_CHUNK_LEN),
            Some(limit) => {
                let floor = Scheduler::predicted_streamed_floor_bytes(shape);
                let headroom_elems =
                    limit.saturating_sub(floor) / shape.elem_bytes.max(1);
                (headroom_elems / 2).clamp(MIN_CHUNK_LEN, n.max(MIN_CHUNK_LEN))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape(domain: usize, batch: usize) -> WorkloadShape {
        WorkloadShape { domain_size: domain, batch, elem_bytes: 8 }
    }

    #[test]
    fn override_parsing_counts_garbage_and_zero() {
        let counter = zaatar_obs::counter("sched.env.bad_override");
        let before = counter.get();
        let p = HostProfile::synthetic(4, 50_000.0).with_override_str(Some("not-a-number"));
        assert_eq!(p.worker_override, None);
        assert_eq!(counter.get(), before + 1);
        let p = p.with_override_str(Some("0"));
        assert_eq!(p.worker_override, None);
        assert_eq!(counter.get(), before + 2);
        // A good override parses without touching the counter and wins
        // over both requests and host parallelism.
        let p = p.with_override_str(Some(" 3 "));
        assert_eq!(p.worker_override, Some(3));
        assert_eq!(counter.get(), before + 2);
        assert_eq!(p.effective_workers(8), 3);
        assert_eq!(p.effective_workers(1), 3);
        // And None clears it.
        let p = p.with_override_str(None);
        assert_eq!(p.worker_override, None);
        assert_eq!(counter.get(), before + 2);
    }

    #[test]
    fn effective_workers_clamps_to_parallelism_without_override() {
        let p = HostProfile::synthetic(4, 50_000.0);
        assert_eq!(p.effective_workers(0), 1);
        assert_eq!(p.effective_workers(3), 3);
        assert_eq!(p.effective_workers(64), 4);
    }

    #[test]
    fn single_core_host_always_schedules_serial() {
        let s = Scheduler::new(HostProfile::synthetic(1, 20_000.0), MicroCosts::paper_128());
        for batch in [1usize, 4, 16, 64] {
            assert_eq!(s.workers_for(shape(1024, batch)), 1);
        }
    }

    #[test]
    fn batch_work_beats_spawn_overhead_on_multicore() {
        // Paper-cost 128-bit field, 8-way host, realistic spawn cost:
        // a beta=16 batch at n=1024 carries ~100 ms of predicted work,
        // so the scheduler uses the cores.
        let s = Scheduler::new(HostProfile::synthetic(8, 20_000.0), MicroCosts::paper_128());
        let w = s.workers_for(shape(1024, 16));
        assert!(w > 1, "expected parallel, got {w}");
        // And never more workers than instances.
        assert_eq!(s.workers_for(shape(1024, 1)), 1);
    }

    #[test]
    fn absurd_spawn_cost_forces_serial_even_on_multicore() {
        // If forking costs more than the whole batch, serial wins: the
        // BENCH_pr5 regression (speedup 0.849 at workers=8) can no
        // longer be scheduled.
        let s = Scheduler::new(HostProfile::synthetic(8, 1e12), MicroCosts::paper_128());
        assert_eq!(s.workers_for(shape(1024, 16)), 1);
    }

    #[test]
    fn worker_override_pins_the_scheduled_count() {
        let host = HostProfile::synthetic(8, 20_000.0).with_override_str(Some("2"));
        let s = Scheduler::new(host, MicroCosts::paper_128());
        assert_eq!(s.workers_for(shape(1024, 16)), 2);
    }

    #[test]
    fn ntt_cutoff_rises_with_cheaper_mults_and_slower_spawns() {
        let paper = Scheduler::new(HostProfile::synthetic(4, 20_000.0), MicroCosts::paper_128());
        let slow_spawn =
            Scheduler::new(HostProfile::synthetic(4, 2_000_000.0), MicroCosts::paper_128());
        assert!(slow_spawn.ntt_parallel_min_log2() >= paper.ntt_parallel_min_log2());
        // 220-bit mults are pricier than 128-bit: cutoff can only drop.
        let p220 = Scheduler::new(HostProfile::synthetic(4, 20_000.0), MicroCosts::paper_220());
        assert!(p220.ntt_parallel_min_log2() <= paper.ntt_parallel_min_log2());
        // Both stay in the clamp range.
        let lo = NTT_MIN_LOG2_RANGE.0;
        let hi = NTT_MIN_LOG2_RANGE.1;
        for s in [paper, slow_spawn, p220] {
            let c = s.ntt_parallel_min_log2();
            assert!((lo..=hi).contains(&c));
        }
    }

    #[test]
    fn unlimited_budget_stays_monolithic_while_cache_resident() {
        // The bench's smaller stream size: n = 1024, predicted peak
        // 80 KiB — inside the 256 KiB cache threshold, so monolithic
        // (which BENCH_pr9 measured ~13% faster there).
        let s = Scheduler::new(HostProfile::synthetic(1, 20_000.0), MicroCosts::paper_128());
        assert_eq!(
            s.proving_for(shape(1024, 16), MemBudget::unlimited()),
            Proving::Monolithic
        );
        // The larger size: n = 4096, predicted peak 320 KiB — past the
        // cache threshold, so streamed even with no budget in force.
        assert!(matches!(
            s.proving_for(shape(4096, 16), MemBudget::unlimited()),
            Proving::Streamed { .. }
        ));
    }

    #[test]
    fn budget_pressure_forces_streaming_with_bounded_chunk() {
        let s = Scheduler::new(HostProfile::synthetic(1, 20_000.0), MicroCosts::paper_128());
        let sh = shape(1024, 1);
        let peak = Scheduler::predicted_monolithic_peak_bytes(sh);
        assert_eq!(peak, 10 * 1024 * 8);
        // A budget exactly at the peak still fits monolithic.
        assert_eq!(s.proving_for(sh, MemBudget::bytes(peak)), Proving::Monolithic);
        // One byte less forces streaming.
        let Proving::Streamed { chunk_len } = s.proving_for(sh, MemBudget::bytes(peak - 1))
        else {
            panic!("expected streamed under budget pressure");
        };
        assert!(chunk_len >= MIN_CHUNK_LEN);
        assert!(chunk_len <= 1024);
        // Chunk residency above the floor must fit in the headroom
        // (half of it, leaving room for size-class rounding).
        let floor = Scheduler::predicted_streamed_floor_bytes(sh);
        let headroom = (peak - 1) - floor;
        assert!(chunk_len * 8 <= headroom.max(MIN_CHUNK_LEN * 8 * 2));
    }

    #[test]
    fn chunk_len_grows_with_headroom_and_caps_at_domain() {
        let s = Scheduler::new(HostProfile::synthetic(1, 20_000.0), MicroCosts::paper_128());
        let sh = shape(1024, 1);
        let floor = Scheduler::predicted_streamed_floor_bytes(sh);
        let tight = s.chunk_len(sh, MemBudget::bytes(floor + 64 * 8));
        let roomy = s.chunk_len(sh, MemBudget::bytes(floor + 4096 * 8));
        assert!(tight <= roomy);
        assert!(roomy <= 1024);
        // Unlimited: the cache-friendly n/8 default.
        assert_eq!(s.chunk_len(sh, MemBudget::unlimited()), 128);
        // Tiny domains floor at MIN_CHUNK_LEN.
        assert_eq!(s.chunk_len(shape(32, 1), MemBudget::unlimited()), MIN_CHUNK_LEN);
    }

    #[test]
    fn policy_assembles_all_decisions() {
        let s = Scheduler::new(HostProfile::synthetic(8, 20_000.0), MicroCosts::paper_128());
        let p = s.policy(shape(1024, 16), MemBudget::unlimited());
        assert!(p.workers > 1);
        assert_eq!(p.answering, Answering::Packed);
        assert_eq!(p.proving, Proving::Monolithic);
        assert_eq!(p.msm_window_bits_override, None);
        let p1 = s.policy(shape(1024, 1), MemBudget::unlimited());
        assert_eq!(p1.workers, 1);
        assert_eq!(p1.answering, Answering::Serial);
    }

    #[test]
    fn legacy_policy_constructors_pin_the_old_contracts() {
        let serial = ExecPolicy::serial();
        assert_eq!(serial.workers, 1);
        assert_eq!(serial.proving, Proving::Monolithic);
        assert_eq!(serial.answering, Answering::Serial);
        assert_eq!(serial.ntt_parallel_min_log2, DEFAULT_NTT_PARALLEL_MIN_LOG2);
        let par = ExecPolicy::with_workers(8);
        assert_eq!(par.workers, 8);
        assert_eq!(par.answering, Answering::Packed);
        let st = ExecPolicy::streamed(64);
        assert_eq!(st.proving, Proving::Streamed { chunk_len: 64 });
        assert_eq!(st.workers, 1);
        assert_eq!(ExecPolicy::default(), serial);
    }
}
