//! Optimization passes over the Ginger constraint IR.
//!
//! The paper's compiler emits constraints mechanically — one variable
//! per assignment statement, one product constraint per multiplication —
//! and never looks back at what it produced (§4 fn. 6). Pantry/Buffet-
//! style follow-on work showed that cleaning up that output translates
//! directly into prover time, because every constraint becomes a QAP
//! root and every variable a proof-vector entry. This module implements
//! the three classical cleanups over [`GingerSystem`]:
//!
//! 1. **Constant folding / copy propagation** — an auxiliary variable
//!    pinned by a linear constraint to a constant (`c·v + k = 0`) or to
//!    a scalar multiple of another variable (`c₁·v₁ + c₂·v₂ = 0`) is
//!    substituted everywhere and its defining constraint dropped.
//! 2. **Common-subexpression elimination** — two constraints that define
//!    different auxiliary variables with the *same* right-hand side
//!    (identical product/sum shape, up to scale) pin those variables to
//!    each other; the duplicate definition is dropped and the variables
//!    unified. Byte-identical duplicate constraints are also deduped.
//! 3. **Dead-witness pruning** — auxiliary variables that no surviving
//!    constraint mentions are removed and the remaining variables
//!    renumbered densely (inputs and outputs are always kept: they are
//!    the verifier's IO contract).
//!
//! Passes 1 and 2 run interleaved to a fixpoint (each can expose work
//! for the other), then pass 3 compacts the registry. The result keeps
//! equisatisfiability: a system made unsatisfiable by contradictory
//! constant constraints stays unsatisfiable (the contradiction is kept
//! as a constant≠0 constraint), and [`Optimized::map_assignment`]
//! transports any witness of the original system to the optimized one.
//!
//! Reported per run: before/after [`EncodingStats`] plus the obs
//! counters `cc.opt.folded`, `cc.opt.cse_hits`, `cc.opt.pruned_vars`.

use std::collections::HashMap;

use zaatar_field::PrimeField;

use crate::ir::{Assignment, GingerConstraint, GingerSystem, Kind, LinComb, VarId, VarRegistry};
use crate::stats::{ginger_stats, EncodingStats};

/// What the pass pipeline did, with before/after encoding statistics.
#[derive(Clone, Debug)]
pub struct OptReport {
    /// Constant/copy substitutions applied (pass 1 events).
    pub folded: usize,
    /// Duplicate definitions or duplicate constraints dropped (pass 2
    /// events).
    pub cse_hits: usize,
    /// Auxiliary variables removed by the final compaction (includes
    /// variables made dead by passes 1–2).
    pub pruned_vars: usize,
    /// Encoding statistics of the input system.
    pub before: EncodingStats,
    /// Encoding statistics of the optimized system.
    pub after: EncodingStats,
}

/// An optimized system plus the index mapping back to its source.
#[derive(Clone, Debug)]
pub struct Optimized<F> {
    /// The rewritten, compacted system.
    pub system: GingerSystem<F>,
    /// Old variable index → new index (`None` for removed variables).
    pub var_map: Vec<Option<VarId>>,
    /// Pass report.
    pub report: OptReport,
}

impl<F: PrimeField> Optimized<F> {
    /// Maps variables of the original system into the optimized one.
    /// Panics if any variable was removed — inputs and outputs never
    /// are, so IO lists always map.
    pub fn map_vars(&self, vars: &[VarId]) -> Vec<VarId> {
        vars.iter()
            .map(|v| self.var_map[v.0].expect("variable survived optimization"))
            .collect()
    }

    /// Transports a satisfying assignment of the *original* system
    /// (e.g. from the original witness solver) to the optimized system.
    pub fn map_assignment(&self, asg: &Assignment<F>) -> Assignment<F> {
        let mut out = Assignment::zeroed(self.system.vars.len());
        for (old, new) in self.var_map.iter().enumerate() {
            if let Some(new) = new {
                out.set(*new, asg.get(VarId(old)));
            }
        }
        out
    }
}

/// A resolved substitution for one variable: `v ↦ coeff·root + offset`.
/// Constant folds have no root; copy/CSE aliases have a root variable.
#[derive(Clone, Copy, Debug)]
struct Subst<F> {
    root: Option<VarId>,
    coeff: F,
    offset: F,
}

/// Substitution table with transitive resolution (aliases may chain:
/// `v₂ ↦ 2·v₁` recorded before `v₁ ↦ 3` arrives).
struct SubstMap<F> {
    map: HashMap<usize, Subst<F>>,
}

impl<F: PrimeField> SubstMap<F> {
    fn new() -> Self {
        SubstMap {
            map: HashMap::new(),
        }
    }

    /// Resolves a variable to its final `coeff·root + offset` form.
    ///
    /// Chains are bounded by the table size; anything longer is an
    /// alias cycle, which the insertion sites guard against — if one
    /// slips through anyway, stop at the current root (deterministic
    /// for a given table) instead of spinning forever.
    fn resolve(&self, v: VarId) -> Subst<F> {
        let mut cur = Subst {
            root: Some(v),
            coeff: F::ONE,
            offset: F::ZERO,
        };
        let mut steps = 0usize;
        while let Some(root) = cur.root {
            match self.map.get(&root.0) {
                Some(next) => {
                    debug_assert!(steps <= self.map.len(), "substitution alias cycle");
                    if steps > self.map.len() {
                        break;
                    }
                    steps += 1;
                    // cur = coeff·(next.coeff·next.root + next.offset) + offset.
                    cur = Subst {
                        root: next.root,
                        coeff: cur.coeff * next.coeff,
                        offset: cur.coeff * next.offset + cur.offset,
                    };
                }
                None => break,
            }
        }
        cur
    }

    fn insert(&mut self, v: VarId, s: Subst<F>) {
        debug_assert!(!self.map.contains_key(&v.0), "double substitution");
        debug_assert!(s.root != Some(v), "self-substitution");
        self.map.insert(v.0, s);
    }

    fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    fn affects(&self, v: VarId) -> bool {
        self.map.contains_key(&v.0)
    }
}

/// Rewrites one constraint under the substitution table, restoring the
/// IR invariants (sorted merged terms, `i ≤ j` quad terms, no zeros).
fn apply_subst<F: PrimeField>(
    c: &GingerConstraint<F>,
    subst: &SubstMap<F>,
) -> GingerConstraint<F> {
    let touched = c.quad.iter().any(|(i, j, _)| subst.affects(*i) || subst.affects(*j))
        || c.linear.terms().iter().any(|(v, _)| subst.affects(*v));
    if !touched {
        return c.clone();
    }
    let mut quad: Vec<(VarId, VarId, F)> = Vec::with_capacity(c.quad.len());
    let mut lin_terms: Vec<(VarId, F)> = c.linear.terms().to_vec();
    let mut constant = c.linear.constant_term();
    for (i, j, coeff) in &c.quad {
        let si = subst.resolve(*i);
        let sj = subst.resolve(*j);
        // (ci·ri + oi)(cj·rj + oj) expanded:
        let cross = *coeff;
        match (si.root, sj.root) {
            (Some(ri), Some(rj)) => {
                let (lo, hi) = if ri <= rj { (ri, rj) } else { (rj, ri) };
                quad.push((lo, hi, cross * si.coeff * sj.coeff));
                if !sj.offset.is_zero() {
                    lin_terms.push((ri, cross * si.coeff * sj.offset));
                }
                if !si.offset.is_zero() {
                    lin_terms.push((rj, cross * sj.coeff * si.offset));
                }
                constant += cross * si.offset * sj.offset;
            }
            (Some(ri), None) => {
                lin_terms.push((ri, cross * si.coeff * sj.offset));
                constant += cross * si.offset * sj.offset;
            }
            (None, Some(rj)) => {
                lin_terms.push((rj, cross * sj.coeff * si.offset));
                constant += cross * si.offset * sj.offset;
            }
            (None, None) => constant += cross * si.offset * sj.offset,
        }
    }
    // Rewrite the linear part (the original terms were copied above;
    // map them in place).
    let mut mapped: Vec<(VarId, F)> = Vec::with_capacity(lin_terms.len());
    for (v, coeff) in lin_terms {
        let s = subst.resolve(v);
        if let Some(r) = s.root {
            mapped.push((r, coeff * s.coeff));
        }
        constant += coeff * s.offset;
    }
    // Merge duplicate quad terms.
    quad.sort_by_key(|(i, j, _)| (*i, *j));
    let mut merged_quad: Vec<(VarId, VarId, F)> = Vec::with_capacity(quad.len());
    for (i, j, coeff) in quad {
        match merged_quad.last_mut() {
            Some((li, lj, lc)) if *li == i && *lj == j => *lc += coeff,
            _ => merged_quad.push((i, j, coeff)),
        }
    }
    merged_quad.retain(|(_, _, coeff)| !coeff.is_zero());
    GingerConstraint {
        quad: merged_quad,
        linear: LinComb::from_terms(mapped, constant),
    }
}

/// True for a constraint that is identically zero and can be dropped.
fn is_trivial<F: PrimeField>(c: &GingerConstraint<F>) -> bool {
    c.quad.is_empty() && c.linear.is_constant() && c.linear.constant_term().is_zero()
}

/// If the constraint pins an auxiliary variable to a constant or to a
/// multiple of another variable, returns the substitution.
fn fold_candidate<F: PrimeField>(
    c: &GingerConstraint<F>,
    vars: &VarRegistry,
) -> Option<(VarId, Subst<F>)> {
    if !c.quad.is_empty() {
        return None;
    }
    let terms = c.linear.terms();
    match terms.len() {
        // c·v + k = 0  ⇒  v = −k/c.
        1 => {
            let (v, coeff) = terms[0];
            if vars.kind(v) != Kind::Aux {
                return None;
            }
            let inv = coeff.inverse()?;
            Some((
                v,
                Subst {
                    root: None,
                    coeff: F::ZERO,
                    offset: -c.linear.constant_term() * inv,
                },
            ))
        }
        // c₁·v₁ + c₂·v₂ + k = 0  ⇒  v₂ = −(c₁·v₁ + k)/c₂ for an aux v₂
        // (prefer substituting away the later-allocated variable).
        2 => {
            let (va, ca) = terms[0];
            let (vb, cb) = terms[1];
            let (keep, kc, drop, dc) = if vars.kind(vb) == Kind::Aux {
                (va, ca, vb, cb)
            } else if vars.kind(va) == Kind::Aux {
                (vb, cb, va, ca)
            } else {
                return None;
            };
            let inv = dc.inverse()?;
            Some((
                drop,
                Subst {
                    root: Some(keep),
                    coeff: -kc * inv,
                    offset: -c.linear.constant_term() * inv,
                },
            ))
        }
        _ => None,
    }
}

/// Serializes a constraint into a canonical comparison key (terms are
/// already sorted and merged by the IR invariants).
fn constraint_key<F: PrimeField>(c: &GingerConstraint<F>) -> String {
    format!("{c}")
}

/// If the constraint *defines* an auxiliary variable — `expr − c·v = 0`
/// with `v` in no quad term — returns `(v, coeff_of_v)`. Prefers the
/// highest-numbered candidate (the latest-allocated variable, which is
/// the one the builder introduced for this constraint).
fn defining_candidate<F: PrimeField>(
    c: &GingerConstraint<F>,
    vars: &VarRegistry,
) -> Option<(VarId, F)> {
    c.linear
        .terms()
        .iter()
        .rev()
        .find(|(v, _)| {
            vars.kind(*v) == Kind::Aux
                && !c.quad.iter().any(|(i, j, _)| *i == *v || *j == *v)
        })
        .map(|(v, coeff)| (*v, *coeff))
}

/// The defining constraint with `v` removed, scaled so that it reads
/// `v = key`: returns the normalized right-hand side and the scale `s`
/// with `v = s · normalized`.
fn normalized_rhs<F: PrimeField>(
    c: &GingerConstraint<F>,
    v: VarId,
    cv: F,
) -> Option<(GingerConstraint<F>, F)> {
    // v = −(c − cv·v)/cv.
    let neg_inv = -cv.inverse()?;
    let rhs_terms: Vec<(VarId, F)> = c
        .linear
        .terms()
        .iter()
        .filter(|(t, _)| *t != v)
        .map(|(t, coeff)| (*t, *coeff * neg_inv))
        .collect();
    let rhs = GingerConstraint {
        quad: c
            .quad
            .iter()
            .map(|(i, j, coeff)| (*i, *j, *coeff * neg_inv))
            .collect(),
        linear: LinComb::from_terms(rhs_terms, c.linear.constant_term() * neg_inv),
    };
    // Normalize by the leading coefficient so `2·x·y` and `−x·y` share
    // a key (scale-insensitive CSE catches sign-mirrored products).
    let lead = rhs
        .quad
        .first()
        .map(|(_, _, coeff)| *coeff)
        .or_else(|| rhs.linear.terms().first().map(|(_, coeff)| *coeff))
        .unwrap_or(F::ONE);
    let lead_inv = lead.inverse()?;
    let norm = GingerConstraint {
        quad: rhs
            .quad
            .iter()
            .map(|(i, j, coeff)| (*i, *j, *coeff * lead_inv))
            .collect(),
        linear: LinComb::from_terms(
            rhs.linear
                .terms()
                .iter()
                .map(|(t, coeff)| (*t, *coeff * lead_inv))
                .collect(),
            rhs.linear.constant_term() * lead_inv,
        ),
    };
    Some((norm, lead))
}

/// Runs the pass pipeline over a system.
pub fn optimize<F: PrimeField>(sys: &GingerSystem<F>) -> Optimized<F> {
    let before = ginger_stats(sys);
    let mut constraints: Vec<GingerConstraint<F>> = sys.constraints.clone();
    let mut folded = 0usize;
    let mut cse_hits = 0usize;

    // Interleave folding and CSE to a fixpoint: a CSE unification can
    // collapse a sum into a pin, and a fold can make two definitions
    // textually identical.
    loop {
        let mut changed = false;

        // Pass 1: constant folding / copy propagation.
        loop {
            let mut subst = SubstMap::<F>::new();
            for c in &constraints {
                if let Some((v, s)) = fold_candidate(c, &sys.vars) {
                    if !subst.affects(v) {
                        // Guard against chains that would loop back.
                        let root_cycles = s
                            .root
                            .is_some_and(|r| subst.resolve(r).root == Some(v));
                        if !root_cycles {
                            subst.insert(v, s);
                        }
                    }
                }
            }
            if subst.is_empty() {
                break;
            }
            folded += subst.map.len();
            changed = true;
            constraints = constraints
                .iter()
                .map(|c| apply_subst(c, &subst))
                .filter(|c| !is_trivial(c))
                .collect();
        }

        // Pass 2a: whole-constraint dedup (identical product or linear
        // constraints enforce the same equation once).
        {
            let mut seen: HashMap<String, ()> = HashMap::new();
            let len_before = constraints.len();
            constraints.retain(|c| seen.insert(constraint_key(c), ()).is_none());
            let dropped = len_before - constraints.len();
            if dropped > 0 {
                cse_hits += dropped;
                changed = true;
            }
        }

        // Pass 2b: defining-constraint CSE — two definitions with the
        // same normalized right-hand side unify their variables.
        {
            let mut subst = SubstMap::<F>::new();
            let mut table: HashMap<String, (VarId, F)> = HashMap::new();
            let mut dropped_idx: Vec<usize> = Vec::new();
            for (idx, c) in constraints.iter().enumerate() {
                let Some((v, cv)) = defining_candidate(c, &sys.vars) else {
                    continue;
                };
                if subst.affects(v) {
                    continue;
                }
                let Some((norm, scale)) = normalized_rhs(c, v, cv) else {
                    continue;
                };
                if norm.quad.is_empty() && norm.linear.terms().len() <= 1 {
                    // Constant pins and copies belong to pass 1.
                    continue;
                }
                let key = constraint_key(&norm);
                match table.get(&key) {
                    Some((canon, canon_scale)) if *canon != v => {
                        // v = scale·norm, canon = canon_scale·norm
                        // ⇒ v = (scale/canon_scale)·canon.
                        let Some(inv) = canon_scale.inverse() else {
                            continue;
                        };
                        // Guard against alias cycles, as pass 1 does:
                        // mirrored double definitions (`w = x·y` and
                        // `w = a·b` vs `v = a·b` and `v = x·y`) would
                        // otherwise record `w ↦ v` and then `v ↦ w`,
                        // and resolution would never terminate. Leave
                        // the closing alias for a later round (the
                        // first unification makes the mirrored pair
                        // textually identical, so pass 2a drops it).
                        if subst.resolve(*canon).root == Some(v) {
                            continue;
                        }
                        subst.insert(
                            v,
                            Subst {
                                root: Some(*canon),
                                coeff: scale * inv,
                                offset: F::ZERO,
                            },
                        );
                        dropped_idx.push(idx);
                    }
                    Some(_) => {}
                    None => {
                        table.insert(key, (v, scale));
                    }
                }
            }
            if !dropped_idx.is_empty() {
                cse_hits += dropped_idx.len();
                changed = true;
                let drop_set: std::collections::HashSet<usize> =
                    dropped_idx.into_iter().collect();
                constraints = constraints
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| !drop_set.contains(i))
                    .map(|(_, c)| apply_subst(c, &subst))
                    .filter(|c| !is_trivial(c))
                    .collect();
            }
        }

        if !changed {
            break;
        }
    }

    // Pass 3: dead-witness pruning with dense renumbering.
    let mut used = vec![false; sys.vars.len()];
    for c in &constraints {
        for (i, j, _) in &c.quad {
            used[i.0] = true;
            used[j.0] = true;
        }
        for (v, _) in c.linear.terms() {
            used[v.0] = true;
        }
    }
    let mut var_map: Vec<Option<VarId>> = vec![None; sys.vars.len()];
    let mut new_vars = VarRegistry::default();
    let mut pruned_vars = 0usize;
    for old in 0..sys.vars.len() {
        let kind = sys.vars.kind(VarId(old));
        if kind == Kind::Aux && !used[old] {
            pruned_vars += 1;
            continue;
        }
        var_map[old] = Some(new_vars.alloc(kind));
    }
    let remap = |v: VarId| var_map[v.0].expect("used variable kept");
    let constraints: Vec<GingerConstraint<F>> = constraints
        .iter()
        .map(|c| GingerConstraint {
            quad: c
                .quad
                .iter()
                .map(|(i, j, coeff)| (remap(*i), remap(*j), *coeff))
                .collect(),
            linear: LinComb::from_terms(
                c.linear
                    .terms()
                    .iter()
                    .map(|(v, coeff)| (remap(*v), *coeff))
                    .collect(),
                c.linear.constant_term(),
            ),
        })
        .collect();

    let system = GingerSystem {
        vars: new_vars,
        constraints,
    };
    let after = ginger_stats(&system);
    zaatar_obs::counter("cc.opt.folded").add(folded as u64);
    zaatar_obs::counter("cc.opt.cse_hits").add(cse_hits as u64);
    zaatar_obs::counter("cc.opt.pruned_vars").add(pruned_vars as u64);
    Optimized {
        system,
        var_map,
        report: OptReport {
            folded,
            cse_hits,
            pruned_vars,
            before,
            after,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Builder;
    use zaatar_field::{Field, F61};

    fn f(x: i64) -> F61 {
        F61::from_i64(x)
    }

    /// Solve the original, optimize, transport the witness, and check
    /// the optimized system accepts it with identical IO.
    fn check_equivalent(
        sys: &GingerSystem<F61>,
        solver: &crate::builder::WitnessSolver<F61>,
        inputs: &[F61],
    ) -> Optimized<F61> {
        let asg = solver.solve(inputs).expect("solvable");
        assert!(sys.is_satisfied(&asg));
        let opt = optimize(sys);
        let mapped = opt.map_assignment(&asg);
        assert!(
            opt.system.is_satisfied(&mapped),
            "optimized system rejects transported witness: {:?}",
            opt.system.first_violation(&mapped)
        );
        let outs = opt.map_vars(solver.outputs());
        assert_eq!(
            mapped.extract(&outs),
            asg.extract(solver.outputs()),
            "public IO must be preserved"
        );
        assert!(opt.system.constraints.len() <= sys.constraints.len());
        assert!(opt.system.vars.len() <= sys.vars.len());
        opt
    }

    #[test]
    fn folds_constant_pins() {
        // materialize(2x) emits the copy constraint v − 2x = 0, which
        // copy propagation removes.
        let mut b = Builder::<F61>::new();
        let x = b.alloc_input();
        let v = b.materialize(&x.scale(f(2)));
        let y = b.mul(&v, &x);
        b.bind_output(&y);
        let (sys, solver) = b.finish();
        let opt = check_equivalent(&sys, &solver, &[f(5)]);
        // The copy v = 2x folds away.
        assert!(opt.report.folded >= 1, "report: {:?}", opt.report);
        assert!(opt.system.constraints.len() < sys.constraints.len());
    }

    #[test]
    fn cse_unifies_identical_products() {
        let mut b = Builder::<F61>::new();
        let x = b.alloc_input();
        let y = b.alloc_input();
        let p1 = b.mul(&x, &y);
        let p2 = b.mul(&x, &y);
        let sum = p1.add(&p2);
        b.bind_output(&sum);
        let (sys, solver) = b.finish();
        let opt = check_equivalent(&sys, &solver, &[f(6), f(7)]);
        assert!(opt.report.cse_hits >= 1, "report: {:?}", opt.report);
        assert!(opt.report.pruned_vars >= 1, "unified var becomes dead");
    }

    #[test]
    fn cse_catches_sign_mirrored_products() {
        // d1 = x·y, d2 = −x·y (the min/max compare-exchange shape).
        let mut b = Builder::<F61>::new();
        let x = b.alloc_input();
        let y = b.alloc_input();
        let p1 = b.mul(&x, &y);
        let neg_y = y.scale(-F61::ONE);
        let p2 = b.mul(&x, &neg_y);
        b.bind_output(&p1.add(&p2));
        let (sys, solver) = b.finish();
        let opt = check_equivalent(&sys, &solver, &[f(3), f(4)]);
        assert!(opt.report.cse_hits >= 1, "report: {:?}", opt.report);
    }

    #[test]
    fn whole_constraint_dedup() {
        let mut b = Builder::<F61>::new();
        let x = b.alloc_input();
        let y = b.alloc_input();
        // The same enforcement twice.
        b.enforce_product(&x, &y, &LinComb::constant(f(42)));
        b.enforce_product(&x, &y, &LinComb::constant(f(42)));
        b.bind_output(&x);
        let (sys, solver) = b.finish();
        let opt = check_equivalent(&sys, &solver, &[f(6), f(7)]);
        assert!(opt.report.cse_hits >= 1);
        assert_eq!(opt.system.constraints.len(), sys.constraints.len() - 1);
    }

    #[test]
    fn prunes_dead_witnesses() {
        let mut b = Builder::<F61>::new();
        let x = b.alloc_input();
        let _unused = b.mul(&x, &x); // product never consumed
        b.bind_output(&x);
        let (sys, solver) = b.finish();
        let opt = check_equivalent(&sys, &solver, &[f(5)]);
        // The unused product var survives (its constraint mentions it);
        // but a CSE/fold-killed var would not. Allocate one directly:
        assert!(opt.system.vars.len() <= sys.vars.len());
        let _ = opt;
    }

    #[test]
    fn unsat_systems_stay_unsat() {
        let mut b = Builder::<F61>::new();
        let x = b.alloc_input();
        // x·0 = 1 is unsatisfiable for every x; after folding the zero
        // side, the contradiction must survive as a constant constraint.
        b.enforce_product(&x, &LinComb::zero(), &LinComb::constant(F61::ONE));
        b.bind_output(&x);
        let (sys, solver) = b.finish();
        let opt = optimize(&sys);
        let asg = solver.solve(&[f(1)]).unwrap();
        assert!(!sys.is_satisfied(&asg));
        let mapped = opt.map_assignment(&asg);
        assert!(
            !opt.system.is_satisfied(&mapped),
            "optimization must not make an unsat system satisfiable"
        );
    }

    #[test]
    fn gadget_hash_round_shrinks() {
        // xor and maj over the same operands share ab products.
        let mut b = Builder::<F61>::new();
        let a = b.u32_input();
        let c = b.u32_input();
        let d = b.u32_input();
        let x = b.u32_xor(&a, &c);
        let m = b.u32_maj(&a, &c, &d);
        let mixed = b.u32_xor(&x, &m);
        b.bind_output(&mixed.to_lc());
        let (sys, solver) = b.finish();
        let ins: Vec<F61> = [0xdead_beefu32, 0x0123_4567, 0x8899_aabb]
            .iter()
            .map(|&v| F61::from_u64(u64::from(v)))
            .collect();
        let opt = check_equivalent(&sys, &solver, &ins);
        assert!(
            opt.report.cse_hits >= 32,
            "32 shared ab products: {:?}",
            opt.report
        );
        assert!(opt.system.constraints.len() < sys.constraints.len());
    }

    #[test]
    fn idempotent_on_optimized_output() {
        let mut b = Builder::<F61>::new();
        let a = b.u32_input();
        let c = b.u32_input();
        let x = b.u32_xor(&a, &c);
        let y = b.u32_and(&a, &c);
        let s = x.to_lc().add(&y.to_lc());
        b.bind_output(&s);
        let (sys, _) = b.finish();
        let once = optimize(&sys);
        let twice = optimize(&once.system);
        assert_eq!(
            twice.system.constraints.len(),
            once.system.constraints.len()
        );
        assert_eq!(twice.report.cse_hits, 0);
        assert_eq!(twice.report.folded, 0);
        assert_eq!(twice.report.pruned_vars, 0);
    }
}

#[cfg(test)]
mod cycle_repro {
    use super::*;
    use crate::builder::Builder;
    use zaatar_field::F61;

    #[test]
    fn cse_double_defined_vars_terminate() {
        // w = x·y (c0), v = a·b (c1), then cross-enforce w = a·b (c2)
        // and v = x·y (c3): each aux defined twice with mirrored RHS.
        let mut b = Builder::<F61>::new();
        let x = b.alloc_input();
        let y = b.alloc_input();
        let a = b.alloc_input();
        let bb = b.alloc_input();
        let w = b.mul(&x, &y);
        let v = b.mul(&a, &bb);
        b.enforce_product(&a, &bb, &w);
        b.enforce_product(&x, &y, &v);
        b.bind_output(&w.add(&v));
        let (sys, _solver) = b.finish();
        let opt = optimize(&sys);
        assert!(opt.system.constraints.len() <= sys.constraints.len());
    }
}
