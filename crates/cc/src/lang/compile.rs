//! The ZSL flattening compiler: a symbolic interpreter over the gadget
//! [`Builder`].
//!
//! The compiler *executes* the program over symbolic values (linear
//! combinations): bounded loops unroll naturally, compile-time-constant
//! conditionals select a branch, and data-dependent conditionals execute
//! both branches and merge every assigned variable through a multiplexer.
//! The output is a straight-line [`GingerSystem`] plus a witness solver —
//! the "list of assignment statements" form of \[16\].

use std::collections::HashMap;

use zaatar_field::PrimeField;

use crate::builder::{Builder, WitnessSolver};
use crate::ir::{GingerSystem, LinComb};
use crate::numeric::decode_i64;

use super::ast::{BinOp, Expr, Program, Stmt, UnOp};
use super::parser::parse;

/// Compilation options.
#[derive(Clone, Debug)]
pub struct CompileOptions {
    /// Bit width used for order comparisons (`<`, `<=`, `>`, `>=`): the
    /// difference of any two compared values must fit in this many bits.
    /// The paper's benchmarks use 32-bit signed operands.
    pub width: usize,
    /// Materialize every assignment statement into a fresh constraint
    /// variable (the Fairplay-descended behaviour of the paper's
    /// compiler, which "turns a program into a list of assignment
    /// statements" and gives `|C_ginger| ≈ |Z_ginger|`, §4 fn. 6).
    /// Disabling it propagates values symbolically — a more aggressive
    /// optimization than the paper's, kept for ablation.
    pub materialize: bool,
    /// Allow data-dependent array reads, compiled as Θ(n) selector sums
    /// (the "natural translation" §5.4 warns produces "an excessive
    /// number of constraints"). Off by default: the compiler rejects
    /// dynamic indices with an error instead.
    pub dynamic_indexing: bool,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            width: 32,
            materialize: true,
            dynamic_indexing: false,
        }
    }
}

impl CompileOptions {
    /// Symbolic-propagation mode (ablation; see `materialize`).
    pub fn symbolic() -> Self {
        CompileOptions {
            width: 32,
            materialize: false,
            dynamic_indexing: false,
        }
    }
}

/// A compilation error with a source line where available.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompileError {
    /// Human-readable description.
    pub msg: String,
    /// 1-based source line (0 when synthesized after parsing).
    pub line: usize,
}

impl CompileError {
    /// Creates an error.
    pub fn new(msg: impl Into<String>, line: usize) -> Self {
        CompileError {
            msg: msg.into(),
            line,
        }
    }
}

impl core::fmt::Display for CompileError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if self.line > 0 {
            write!(f, "line {}: {}", self.line, self.msg)
        } else {
            write!(f, "{}", self.msg)
        }
    }
}

impl std::error::Error for CompileError {}

/// A compiled ZSL program: the Ginger constraint system and its witness
/// solver.
#[derive(Debug)]
pub struct Compiled<F> {
    /// The general degree-2 constraint system.
    pub ginger: GingerSystem<F>,
    /// Witness generator (runs the computation).
    pub solver: WitnessSolver<F>,
}

/// A symbolic value in the compiler's environment.
#[derive(Clone, Debug, PartialEq)]
enum Value<F> {
    /// A field-valued scalar.
    Scalar(LinComb<F>),
    /// A fixed-size array of scalars.
    Array(Vec<LinComb<F>>),
    /// A compile-time integer (loop variables).
    Const(i64),
}

/// An undoable write, recorded while compiling a data-dependent branch
/// so the two branch states can be diffed and merged without cloning the
/// whole environment (generated benchmarks carry arrays of 10⁵ elements;
/// whole-environment clones per `if` would make compilation quadratic).
#[derive(Clone, Debug)]
enum Undo<F> {
    /// A scalar (or whole-value) overwrite.
    Scalar {
        lvl: usize,
        name: String,
        old: Value<F>,
    },
    /// An array element overwrite.
    Element {
        lvl: usize,
        name: String,
        idx: usize,
        old: LinComb<F>,
    },
}

/// A write target, for diffing branch effects.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
enum Target {
    Scalar(usize, String),
    Element(usize, String, usize),
}

struct Ctx<'o, F: PrimeField> {
    b: Builder<F>,
    scopes: Vec<HashMap<String, Value<F>>>,
    opts: &'o CompileOptions,
    /// Write logs for data-dependent branches currently being compiled
    /// (one per nesting level).
    undo_stack: Vec<Vec<Undo<F>>>,
}

impl<'o, F: PrimeField> Ctx<'o, F> {
    fn err(msg: impl Into<String>) -> CompileError {
        CompileError::new(msg, 0)
    }

    fn lookup(&self, name: &str) -> Result<&Value<F>, CompileError> {
        self.scopes
            .iter()
            .rev()
            .find_map(|s| s.get(name))
            .ok_or_else(|| Self::err(format!("unknown variable '{name}'")))
    }

    fn assign(&mut self, name: &str, value: Value<F>) -> Result<(), CompileError> {
        let n = self.scopes.len();
        for (rev_i, scope) in self.scopes.iter_mut().rev().enumerate() {
            if let Some(slot) = scope.get_mut(name) {
                if let Some(log) = self.undo_stack.last_mut() {
                    log.push(Undo::Scalar {
                        lvl: n - 1 - rev_i,
                        name: name.to_string(),
                        old: slot.clone(),
                    });
                }
                *slot = value;
                return Ok(());
            }
        }
        Err(Self::err(format!("assignment to undeclared variable '{name}'")))
    }

    /// Writes one array element, recording the old value when inside a
    /// branch.
    fn assign_element(
        &mut self,
        name: &str,
        idx: i64,
        value: LinComb<F>,
    ) -> Result<(), CompileError> {
        let n = self.scopes.len();
        for (rev_i, scope) in self.scopes.iter_mut().rev().enumerate() {
            if let Some(slot) = scope.get_mut(name) {
                return match slot {
                    Value::Array(elems) => {
                        let len = elems.len();
                        match usize::try_from(idx).ok().filter(|i| *i < len) {
                            Some(iu) => {
                                if let Some(log) = self.undo_stack.last_mut() {
                                    log.push(Undo::Element {
                                        lvl: n - 1 - rev_i,
                                        name: name.to_string(),
                                        idx: iu,
                                        old: elems[iu].clone(),
                                    });
                                }
                                elems[iu] = value;
                                Ok(())
                            }
                            None => Err(Self::err(format!(
                                "index {idx} out of range for '{name}' (length {len})"
                            ))),
                        }
                    }
                    _ => Err(Self::err(format!("'{name}' is not an array"))),
                };
            }
        }
        Err(Self::err(format!(
            "assignment to undeclared variable '{name}'"
        )))
    }

    /// Reads the current value at a write target.
    fn read_target(&self, t: &Target) -> Value<F> {
        match t {
            Target::Scalar(lvl, name) => self.scopes[*lvl][name].clone(),
            Target::Element(lvl, name, idx) => match &self.scopes[*lvl][name] {
                Value::Array(elems) => Value::Scalar(elems[*idx].clone()),
                _ => unreachable!("element target points at an array"),
            },
        }
    }

    /// Writes a merged value back to a target (recording into any
    /// enclosing branch's log, which makes nested ifs compose).
    fn write_target(&mut self, t: &Target, v: Value<F>) -> Result<(), CompileError> {
        match t {
            Target::Scalar(lvl, name) => {
                if let Some(log) = self.undo_stack.last_mut() {
                    log.push(Undo::Scalar {
                        lvl: *lvl,
                        name: name.clone(),
                        old: self.scopes[*lvl][name].clone(),
                    });
                }
                *self
                    .scopes[*lvl]
                    .get_mut(name)
                    .expect("target exists") = v;
                Ok(())
            }
            Target::Element(lvl, name, idx) => {
                let lc = match v {
                    Value::Scalar(lc) => lc,
                    Value::Const(n) => LinComb::constant(F::from_i64(n)),
                    Value::Array(_) => {
                        return Err(Self::err(format!(
                            "branch type mismatch for '{name}'"
                        )))
                    }
                };
                if let Some(log) = self.undo_stack.last_mut() {
                    let old = match &self.scopes[*lvl][name] {
                        Value::Array(elems) => elems[*idx].clone(),
                        _ => unreachable!("element target points at an array"),
                    };
                    log.push(Undo::Element {
                        lvl: *lvl,
                        name: name.clone(),
                        idx: *idx,
                        old,
                    });
                }
                match self.scopes[*lvl].get_mut(name).expect("target exists") {
                    Value::Array(elems) => elems[*idx] = lc,
                    _ => unreachable!("element target points at an array"),
                }
                Ok(())
            }
        }
    }

    /// Runs a branch body in its own scope with write logging; returns
    /// the touched outer-scope targets with their in-branch values, then
    /// rolls every write back.
    fn exec_branch(
        &mut self,
        body: &[Stmt],
    ) -> Result<Vec<(Target, Value<F>)>, CompileError> {
        let base_len = self.scopes.len();
        self.scopes.push(HashMap::new());
        self.undo_stack.push(Vec::new());
        let result = self.exec_all(body);
        let log = self.undo_stack.pop().expect("pushed above");
        self.scopes.pop();
        result?;
        // Collect final values of touched outer-scope targets, in first-
        // write order, deduplicated.
        let mut seen = std::collections::HashSet::new();
        let mut touched = Vec::new();
        for entry in &log {
            let target = match entry {
                Undo::Scalar { lvl, name, .. } => Target::Scalar(*lvl, name.clone()),
                Undo::Element { lvl, name, idx, .. } => {
                    Target::Element(*lvl, name.clone(), *idx)
                }
            };
            let lvl = match &target {
                Target::Scalar(l, _) | Target::Element(l, _, _) => *l,
            };
            if lvl < base_len && seen.insert(target.clone()) {
                touched.push((target.clone(), self.read_target(&target)));
            }
        }
        // Roll back in reverse so earlier old-values win.
        for entry in log.into_iter().rev() {
            match entry {
                Undo::Scalar { lvl, name, old } => {
                    if lvl < base_len {
                        self.scopes[lvl].insert(name, old);
                    }
                }
                Undo::Element { lvl, name, idx, old } => {
                    if lvl < base_len {
                        if let Some(Value::Array(elems)) = self.scopes[lvl].get_mut(&name) {
                            elems[idx] = old;
                        }
                    }
                }
            }
        }
        Ok(touched)
    }

    fn declare(&mut self, name: &str, value: Value<F>) -> Result<(), CompileError> {
        let scope = self.scopes.last_mut().expect("at least one scope");
        if scope.contains_key(name) {
            return Err(Self::err(format!("duplicate declaration of '{name}'")));
        }
        scope.insert(name.to_string(), value);
        Ok(())
    }

    /// Tries to evaluate an expression to a compile-time integer.
    fn const_eval(&self, e: &Expr) -> Option<i64> {
        match e {
            Expr::Num(n) => Some(*n),
            Expr::Ident(name) => match self.lookup(name).ok()? {
                Value::Const(n) => Some(*n),
                Value::Scalar(lc) if lc.is_constant() => decode_i64(lc.constant_term()),
                _ => None,
            },
            Expr::Unary(UnOp::Neg, inner) => self.const_eval(inner).map(|n| -n),
            Expr::Unary(UnOp::Not, inner) => {
                self.const_eval(inner).map(|n| i64::from(n == 0))
            }
            Expr::Binary(op, l, r) => {
                let (a, b) = (self.const_eval(l)?, self.const_eval(r)?);
                Some(match op {
                    BinOp::Add => a.checked_add(b)?,
                    BinOp::Sub => a.checked_sub(b)?,
                    BinOp::Mul => a.checked_mul(b)?,
                    BinOp::Div => a.checked_div(b)?,
                    BinOp::Lt => i64::from(a < b),
                    BinOp::Le => i64::from(a <= b),
                    BinOp::Gt => i64::from(a > b),
                    BinOp::Ge => i64::from(a >= b),
                    BinOp::Eq => i64::from(a == b),
                    BinOp::Ne => i64::from(a != b),
                    BinOp::And => i64::from(a != 0 && b != 0),
                    BinOp::Or => i64::from(a != 0 || b != 0),
                    // Bitwise ops have u32 semantics; out-of-range
                    // operands are not const-foldable (the gadget's
                    // range check rejects them at solve time instead).
                    BinOp::BitAnd => {
                        i64::from(u32::try_from(a).ok()? & u32::try_from(b).ok()?)
                    }
                    BinOp::BitXor => {
                        i64::from(u32::try_from(a).ok()? ^ u32::try_from(b).ok()?)
                    }
                    BinOp::BitOr => {
                        i64::from(u32::try_from(a).ok()? | u32::try_from(b).ok()?)
                    }
                })
            }
            Expr::Index(_, _) => None,
        }
    }

    fn eval(&mut self, e: &Expr) -> Result<LinComb<F>, CompileError> {
        match e {
            Expr::Num(n) => Ok(LinComb::constant(F::from_i64(*n))),
            Expr::Ident(name) => match self.lookup(name)? {
                Value::Scalar(lc) => Ok(lc.clone()),
                Value::Const(n) => Ok(LinComb::constant(F::from_i64(*n))),
                Value::Array(_) => Err(Self::err(format!("array '{name}' used as a scalar"))),
            },
            Expr::Index(name, idx) => {
                if let Some(i) = self.const_eval(idx) {
                    return match self.lookup(name)? {
                        Value::Array(elems) => {
                            let len = elems.len();
                            usize::try_from(i)
                                .ok()
                                .and_then(|i| elems.get(i))
                                .cloned()
                                .ok_or_else(|| {
                                    Self::err(format!(
                                        "index {i} out of range for '{name}' (length {len})"
                                    ))
                                })
                        }
                        _ => Err(Self::err(format!("'{name}' is not an array"))),
                    };
                }
                if !self.opts.dynamic_indexing {
                    return Err(Self::err(format!(
                        "index into '{name}' is not a compile-time constant \
                         (data-dependent indices cost Θ(n) constraints per access, \
                         paper §5.4; opt in with CompileOptions::dynamic_indexing)"
                    )));
                }
                // The Θ(n) selector-sum translation.
                let idx_lc = self.eval(idx)?;
                let elems = match self.lookup(name)? {
                    Value::Array(elems) => elems.clone(),
                    _ => return Err(Self::err(format!("'{name}' is not an array"))),
                };
                Ok(self.b.select(&elems, &idx_lc))
            }
            Expr::Unary(UnOp::Neg, inner) => Ok(self.eval(inner)?.scale(-F::ONE)),
            Expr::Unary(UnOp::Not, inner) => {
                let v = self.eval(inner)?;
                Ok(self.b.not(&v))
            }
            Expr::Binary(op, l, r) => {
                // Fold sums of products (`a*b + c*d + …`) into a single
                // multi-term Ginger constraint, as the paper's compiler
                // does for dot products and polynomial evaluations (§4's
                // K₂ accounting depends on this). Handled before constant
                // folding so that arbitrarily long (possibly deeply
                // left-nested) chains never recurse.
                if matches!(op, BinOp::Add | BinOp::Sub) {
                    return self.eval_sum(e);
                }
                // Fold fully-constant subtrees.
                if let Some(n) = self.const_eval(e) {
                    return Ok(LinComb::constant(F::from_i64(n)));
                }
                let lv = self.eval(l)?;
                let rv = self.eval(r)?;
                let w = self.opts.width;
                Ok(match op {
                    BinOp::Add => lv.add(&rv),
                    BinOp::Sub => lv.sub(&rv),
                    BinOp::Mul => self.b.mul(&lv, &rv),
                    BinOp::Div => {
                        if rv.is_constant() {
                            let inv = rv.constant_term().inverse().ok_or_else(|| {
                                Self::err("division by constant zero".to_string())
                            })?;
                            lv.scale(inv)
                        } else {
                            self.b.div(&lv, &rv)
                        }
                    }
                    BinOp::Lt => self.b.less_than(&lv, &rv, w),
                    BinOp::Gt => self.b.less_than(&rv, &lv, w),
                    BinOp::Le => self.b.less_eq(&lv, &rv, w),
                    BinOp::Ge => self.b.less_eq(&rv, &lv, w),
                    BinOp::Eq => self.b.is_eq(&lv, &rv),
                    BinOp::Ne => self.b.is_nonzero(&lv.sub(&rv)),
                    BinOp::And => self.b.and(&lv, &rv),
                    BinOp::Or => self.b.or(&lv, &rv),
                    // Bitwise ops decompose both operands into u32
                    // words (gadget library; each decomposition range-
                    // checks its operand) and recompose the result.
                    BinOp::BitAnd | BinOp::BitXor | BinOp::BitOr => {
                        let wa = self.b.u32_witness(&lv);
                        let wb = self.b.u32_witness(&rv);
                        let wr = match op {
                            BinOp::BitAnd => self.b.u32_and(&wa, &wb),
                            BinOp::BitXor => self.b.u32_xor(&wa, &wb),
                            _ => self.b.u32_or(&wa, &wb),
                        };
                        wr.to_lc()
                    }
                })
            }
        }
    }

    /// Evaluates an `Add`/`Sub` tree by collecting product leaves and a
    /// linear remainder; two or more products become one
    /// `sum_of_products` constraint.
    fn eval_sum(&mut self, e: &Expr) -> Result<LinComb<F>, CompileError> {
        let mut products: Vec<(LinComb<F>, LinComb<F>)> = Vec::new();
        let mut linear = LinComb::zero();
        self.collect_sum(e, F::ONE, &mut products, &mut linear)?;
        let folded = match products.len() {
            0 => LinComb::zero(),
            1 => {
                let (a, b) = &products[0];
                self.b.mul(a, b)
            }
            _ => self.b.sum_of_products(&products),
        };
        Ok(folded.add(&linear))
    }

    /// Iterative worklist over the (possibly very deep) `Add`/`Sub`
    /// spine: generated programs can contain tens of thousands of terms
    /// in one expression (e.g. the bisection benchmark's dense
    /// polynomial), so recursion per term is not an option.
    fn collect_sum(
        &mut self,
        e: &Expr,
        sign: F,
        products: &mut Vec<(LinComb<F>, LinComb<F>)>,
        linear: &mut LinComb<F>,
    ) -> Result<(), CompileError> {
        let mut work: Vec<(&Expr, F)> = vec![(e, sign)];
        while let Some((e, sign)) = work.pop() {
            match e {
                Expr::Binary(BinOp::Add, l, r) => {
                    work.push((l, sign));
                    work.push((r, sign));
                }
                Expr::Binary(BinOp::Sub, l, r) => {
                    work.push((l, sign));
                    work.push((r, -sign));
                }
                Expr::Unary(UnOp::Neg, inner) => work.push((inner, -sign)),
                Expr::Binary(BinOp::Mul, l, r) => {
                    // Constant folding happens at the factor level, so
                    // the chain itself is never recursed into.
                    let lv = self.eval(l)?;
                    let rv = self.eval(r)?;
                    if lv.is_constant() {
                        *linear = linear.add(&rv.scale(lv.constant_term() * sign));
                    } else if rv.is_constant() {
                        *linear = linear.add(&lv.scale(rv.constant_term() * sign));
                    } else {
                        products.push((lv.scale(sign), rv));
                    }
                }
                _ => {
                    let v = self.eval(e)?;
                    *linear = linear.add(&v.scale(sign));
                }
            }
        }
        Ok(())
    }

    /// Applies the `materialize` option to an assigned value: anything
    /// that is not already a constant or a bare variable gets its own
    /// constraint variable (paper fn. 6: one new variable per
    /// constraint).
    fn store(&mut self, lc: LinComb<F>) -> LinComb<F> {
        if !self.opts.materialize || lc.is_constant() || lc.as_single_var().is_some() {
            return lc;
        }
        self.b.materialize(&lc)
    }

    fn exec_all(&mut self, stmts: &[Stmt]) -> Result<(), CompileError> {
        for s in stmts {
            self.exec(s)?;
        }
        Ok(())
    }

    fn exec(&mut self, s: &Stmt) -> Result<(), CompileError> {
        match s {
            Stmt::Var { name, size, init } => {
                let value = match (size, init) {
                    (Some(n), _) => Value::Array(vec![LinComb::zero(); *n]),
                    (None, Some(e)) => {
                        let v = self.eval(e)?;
                        Value::Scalar(self.store(v))
                    }
                    (None, None) => Value::Scalar(LinComb::zero()),
                };
                self.declare(name, value)
            }
            Stmt::Assign { name, index, value } => {
                let v = self.eval(value)?;
                let v = self.store(v);
                match index {
                    None => {
                        // Preserve array-ness check.
                        if matches!(self.lookup(name)?, Value::Array(_)) {
                            return Err(Self::err(format!(
                                "cannot assign scalar to array '{name}'"
                            )));
                        }
                        self.assign(name, Value::Scalar(v))
                    }
                    Some(idx) => {
                        let i = self.const_eval(idx).ok_or_else(|| {
                            Self::err(format!(
                                "index into '{name}' is not a compile-time constant"
                            ))
                        })?;
                        self.assign_element(name, i, v)
                    }
                }
            }
            Stmt::For { var, lo, hi, body } => {
                let lo = self
                    .const_eval(lo)
                    .ok_or_else(|| Self::err("loop lower bound must be a constant"))?;
                let hi = self
                    .const_eval(hi)
                    .ok_or_else(|| Self::err("loop upper bound must be a constant"))?;
                for i in lo..hi {
                    self.scopes.push(HashMap::new());
                    self.declare(var, Value::Const(i))?;
                    self.exec_all(body)?;
                    self.scopes.pop();
                }
                Ok(())
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                if let Some(c) = self.const_eval(cond) {
                    // Compile-time branch selection.
                    self.scopes.push(HashMap::new());
                    let result = if c != 0 {
                        self.exec_all(then_body)
                    } else {
                        self.exec_all(else_body)
                    };
                    self.scopes.pop();
                    return result;
                }
                let cond_lc = self.eval(cond)?;
                // Execute each branch against a write log, rolling the
                // writes back afterwards; only the touched targets are
                // merged (whole-environment clones would make compiling
                // array-heavy programs quadratic).
                let then_touched = self.exec_branch(then_body)?;
                let else_touched = self.exec_branch(else_body)?;
                // Union of targets, then-branch order first.
                let mut targets: Vec<Target> = Vec::new();
                let mut seen = std::collections::HashSet::new();
                for (t, _) in then_touched.iter().chain(else_touched.iter()) {
                    if seen.insert(t.clone()) {
                        targets.push(t.clone());
                    }
                }
                let then_map: HashMap<&Target, &Value<F>> =
                    then_touched.iter().map(|(t, v)| (t, v)).collect();
                let else_map: HashMap<&Target, &Value<F>> =
                    else_touched.iter().map(|(t, v)| (t, v)).collect();
                for target in &targets {
                    let base = self.read_target(target);
                    let tv = then_map.get(target).copied().unwrap_or(&base).clone();
                    let ev = else_map.get(target).copied().unwrap_or(&base).clone();
                    if tv == ev {
                        continue;
                    }
                    let name = match target {
                        Target::Scalar(_, n) | Target::Element(_, n, _) => n.clone(),
                    };
                    let merged = self.merge_values(&cond_lc, tv, ev, &name)?;
                    self.write_target(target, merged)?;
                }
                Ok(())
            }
        }
    }

    fn merge_values(
        &mut self,
        cond: &LinComb<F>,
        tv: Value<F>,
        ev: Value<F>,
        name: &str,
    ) -> Result<Value<F>, CompileError> {
        let as_lc = |v: &Value<F>| -> Option<LinComb<F>> {
            match v {
                Value::Scalar(lc) => Some(lc.clone()),
                Value::Const(n) => Some(LinComb::constant(F::from_i64(*n))),
                Value::Array(_) => None,
            }
        };
        match (&tv, &ev) {
            (Value::Array(ta), Value::Array(ea)) => {
                if ta.len() != ea.len() {
                    return Err(Self::err(format!(
                        "conflicting sizes for array '{name}' across branches"
                    )));
                }
                let merged: Vec<LinComb<F>> = ta
                    .iter()
                    .zip(ea.iter())
                    .map(|(t, e)| {
                        if t == e {
                            t.clone()
                        } else {
                            self.b.mux(cond, t, e)
                        }
                    })
                    .collect();
                Ok(Value::Array(merged))
            }
            _ => {
                let t = as_lc(&tv)
                    .ok_or_else(|| Self::err(format!("branch type mismatch for '{name}'")))?;
                let e = as_lc(&ev)
                    .ok_or_else(|| Self::err(format!("branch type mismatch for '{name}'")))?;
                Ok(Value::Scalar(self.b.mux(cond, &t, &e)))
            }
        }
    }
}

/// Compiles ZSL source into a Ginger constraint system and witness
/// solver.
pub fn compile<F: PrimeField>(
    src: &str,
    opts: &CompileOptions,
) -> Result<Compiled<F>, CompileError> {
    let program = parse(src)?;
    compile_program(&program, opts)
}

/// Compiles a parsed [`Program`].
pub fn compile_program<F: PrimeField>(
    program: &Program,
    opts: &CompileOptions,
) -> Result<Compiled<F>, CompileError> {
    let mut ctx = Ctx::<F> {
        b: Builder::new(),
        scopes: vec![HashMap::new()],
        opts,
        undo_stack: Vec::new(),
    };
    // Inputs first, positionally.
    for (name, size) in &program.inputs {
        let value = match size {
            Some(n) => Value::Array(ctx.b.alloc_inputs(*n)),
            None => Value::Scalar(ctx.b.alloc_input()),
        };
        ctx.declare(name, value)?;
    }
    // Outputs start as zeros; programs overwrite them.
    for (name, size) in &program.outputs {
        let value = match size {
            Some(n) => Value::Array(vec![LinComb::zero(); *n]),
            None => Value::Scalar(LinComb::zero()),
        };
        ctx.declare(name, value)?;
    }
    ctx.exec_all(&program.body)?;
    // Bind outputs in declaration order.
    for (name, _) in &program.outputs {
        let value = ctx.lookup(name)?.clone();
        match value {
            Value::Scalar(lc) => {
                ctx.b.bind_output(&lc);
            }
            Value::Const(n) => {
                ctx.b.bind_output(&LinComb::constant(F::from_i64(n)));
            }
            Value::Array(elems) => {
                for lc in elems {
                    ctx.b.bind_output(&lc);
                }
            }
        }
    }
    let (ginger, solver) = ctx.b.finish();
    Ok(Compiled { ginger, solver })
}

#[cfg(test)]
mod tests {
    use super::*;
    use zaatar_field::{Field, F61};

    fn f(x: i64) -> F61 {
        F61::from_i64(x)
    }

    fn run(src: &str, inputs: &[i64]) -> Vec<F61> {
        let c = compile::<F61>(src, &CompileOptions::default()).expect("compiles");
        let ins: Vec<F61> = inputs.iter().map(|&v| f(v)).collect();
        let asg = c.solver.solve(&ins).expect("solves");
        assert!(
            c.ginger.is_satisfied(&asg),
            "violated constraint {:?}",
            c.ginger.first_violation(&asg)
        );
        asg.extract(c.solver.outputs())
    }

    #[test]
    fn straight_line_arithmetic() {
        let out = run("input a; input b; output y; y = a * b + a - 3;", &[6, 7]);
        assert_eq!(out, vec![f(45)]);
    }

    #[test]
    fn decrement_by_three_example() {
        // The paper's §2.1 running example.
        let out = run("input x; output y; y = x - 3;", &[10]);
        assert_eq!(out, vec![f(7)]);
    }

    #[test]
    fn loops_unroll() {
        let src = "
            input a[4]; output sum;
            var t = 0;
            for i in 0..4 { t = t + a[i]; }
            sum = t;
        ";
        assert_eq!(run(src, &[1, 2, 3, 4]), vec![f(10)]);
    }

    #[test]
    fn nested_loops_with_arithmetic_bounds() {
        let src = "
            input a[6]; output s;
            var t = 0;
            for i in 0..2 {
                for j in 0..3 { t = t + a[i * 3 + j]; }
            }
            s = t;
        ";
        assert_eq!(run(src, &[1, 2, 3, 4, 5, 6]), vec![f(21)]);
    }

    #[test]
    fn data_dependent_if_merges() {
        let src = "
            input a; input b; output y;
            if (a < b) { y = a; } else { y = b; }
        ";
        assert_eq!(run(src, &[3, 9]), vec![f(3)]);
        assert_eq!(run(src, &[9, 3]), vec![f(3)]);
    }

    #[test]
    fn if_without_else() {
        let src = "
            input a; output y;
            y = 10;
            if (a == 5) { y = 99; }
        ";
        assert_eq!(run(src, &[5]), vec![f(99)]);
        assert_eq!(run(src, &[4]), vec![f(10)]);
    }

    #[test]
    fn constant_condition_selects_branch_without_mux() {
        let src = "
            input a; output y;
            if (1 < 2) { y = a; } else { y = 0; }
        ";
        let c = compile::<F61>(src, &CompileOptions::default()).unwrap();
        // No comparison gadget: only the output binding constraint.
        assert_eq!(c.ginger.constraints.len(), 1);
    }

    #[test]
    fn arrays_merge_across_branches() {
        let src = "
            input a; output y[2];
            var t[2];
            t[0] = 1; t[1] = 2;
            if (a != 0) { t[0] = 7; }
            y[0] = t[0]; y[1] = t[1];
        ";
        assert_eq!(run(src, &[5]), vec![f(7), f(2)]);
        assert_eq!(run(src, &[0]), vec![f(1), f(2)]);
    }

    #[test]
    fn comparisons_and_logic() {
        let src = "
            input a; input b; output y;
            y = (a <= b) && (a != 3) || (b == 0);
        ";
        assert_eq!(run(src, &[2, 5]), vec![f(1)]);
        assert_eq!(run(src, &[3, 5]), vec![f(0)]);
        assert_eq!(run(src, &[7, 0]), vec![f(1)]);
    }

    #[test]
    fn bitwise_operators_have_u32_semantics() {
        let src = "
            input a; input b; output y[3];
            y[0] = a & b; y[1] = a ^ b; y[2] = a | b;
        ";
        let (x, z) = (0xdead_beefi64, 0x0123_4567i64);
        assert_eq!(
            run(src, &[x, z]),
            vec![f(x & z), f(x ^ z), f(x | z)]
        );
        // Constant operands fold at compile time: no gadget constraints.
        let folded = compile::<F61>(
            "output y; y = 12 & 10;",
            &CompileOptions::symbolic(),
        )
        .unwrap();
        assert_eq!(folded.ginger.constraints.len(), 1, "only the binding");
        assert_eq!(folded.solver.run(&[]).unwrap(), vec![f(8)]);
    }

    #[test]
    fn bitwise_rejects_out_of_range_operand() {
        let c = compile::<F61>(
            "input a; input b; output y; y = a ^ b;",
            &CompileOptions::default(),
        )
        .unwrap();
        let err = c.solver.solve(&[f(1 << 33), f(1)]).unwrap_err();
        assert!(matches!(err, crate::builder::SolveError::RangeOverflow { .. }));
    }

    #[test]
    fn negative_numbers() {
        let src = "
            input a; output y;
            if (a < 0 - 2) { y = 0 - a; } else { y = a; }
        ";
        assert_eq!(run(src, &[-5]), vec![f(5)]);
        assert_eq!(run(src, &[4]), vec![f(4)]);
    }

    #[test]
    fn unary_operators() {
        let src = "input a; output y; y = -a + 10;";
        assert_eq!(run(src, &[3]), vec![f(7)]);
        let src2 = "input a; output y; y = !(a == 3);";
        assert_eq!(run(src2, &[3]), vec![f(0)]);
        assert_eq!(run(src2, &[4]), vec![f(1)]);
    }

    #[test]
    fn division_by_constant_is_free() {
        let src = "input a; output y; y = a / 4;";
        // In symbolic mode the scaled value needs no constraint beyond
        // the output binding; materialize mode adds the assignment var.
        let c = compile::<F61>(src, &CompileOptions::symbolic()).unwrap();
        assert_eq!(c.ginger.constraints.len(), 1, "only the output binding");
        let c = compile::<F61>(src, &CompileOptions::default()).unwrap();
        assert_eq!(c.ginger.constraints.len(), 2, "assignment + binding");
        // 8/4 = 2 exactly in the field.
        assert_eq!(run(src, &[8]), vec![f(2)]);
    }

    #[test]
    fn materialize_mode_assigns_one_var_per_statement() {
        let src = "
            input a; output y;
            var t = a + 1;
            var u = t + a;
            y = u;
        ";
        let sym = compile::<F61>(src, &CompileOptions::symbolic()).unwrap();
        let mat = compile::<F61>(src, &CompileOptions::default()).unwrap();
        assert!(mat.ginger.constraints.len() > sym.ginger.constraints.len());
        // Both compute the same function.
        let ins = vec![f(5)];
        assert_eq!(
            mat.solver.run(&ins).unwrap(),
            sym.solver.run(&ins).unwrap()
        );
    }

    #[test]
    fn sum_of_products_folds_into_one_constraint() {
        // A dot product in one expression: one multi-term constraint
        // (plus the assignment and output binding).
        let src = "
            input a[3]; input b[3]; output y;
            y = a[0]*b[0] + a[1]*b[1] + a[2]*b[2];
        ";
        let c = compile::<F61>(src, &CompileOptions::symbolic()).unwrap();
        assert_eq!(c.ginger.constraints.len(), 2, "sum constraint + binding");
        let stats = crate::stats::ginger_stats(&c.ginger);
        assert_eq!(stats.k2_distinct, 3);
        assert_eq!(run(src, &[1, 2, 3, 4, 5, 6]), vec![f(32)]);
    }

    #[test]
    fn division_by_variable_constrains() {
        let src = "input a; input b; output y; y = a / b;";
        assert_eq!(run(src, &[84, 2]), vec![f(42)]);
    }

    #[test]
    fn output_array() {
        let src = "
            input a[3]; output y[3];
            for i in 0..3 { y[i] = a[i] * a[i]; }
        ";
        assert_eq!(run(src, &[1, 2, 3]), vec![f(1), f(4), f(9)]);
    }

    #[test]
    fn scalar_output_left_unassigned_is_zero() {
        assert_eq!(run("input a; output y;", &[5]), vec![f(0)]);
    }

    #[test]
    fn error_unknown_variable() {
        let err = compile::<F61>("input a; output y; y = q;", &CompileOptions::default())
            .unwrap_err();
        assert!(err.msg.contains("unknown variable"), "{err}");
    }

    #[test]
    fn error_non_constant_index() {
        let err = compile::<F61>(
            "input a[4]; input i; output y; y = a[i];",
            &CompileOptions::default(),
        )
        .unwrap_err();
        assert!(err.msg.contains("compile-time constant"), "{err}");
    }

    #[test]
    fn error_index_out_of_range() {
        let err = compile::<F61>(
            "input a[2]; output y; y = a[5];",
            &CompileOptions::default(),
        )
        .unwrap_err();
        assert!(err.msg.contains("out of range"), "{err}");
    }

    #[test]
    fn error_duplicate_declaration() {
        let err = compile::<F61>(
            "input a; output y; var t = 1; var t = 2;",
            &CompileOptions::default(),
        )
        .unwrap_err();
        assert!(err.msg.contains("duplicate"), "{err}");
    }

    #[test]
    fn loop_scoped_vars_do_not_leak() {
        let err = compile::<F61>(
            "input a; output y; for i in 0..2 { var t = a; } y = t;",
            &CompileOptions::default(),
        )
        .unwrap_err();
        assert!(err.msg.contains("unknown variable"), "{err}");
    }

    #[test]
    fn loop_variable_in_expressions() {
        let src = "
            output y;
            var t = 0;
            for i in 1..5 { t = t + i * i; }
            y = t;
        ";
        assert_eq!(run(src, &[]), vec![f(30)]);
    }

    #[test]
    fn shadowing_in_nested_scope() {
        let src = "
            input a; output y;
            var t = 1;
            for i in 0..1 { var u = t + a; t = u; }
            y = t;
        ";
        assert_eq!(run(src, &[4]), vec![f(5)]);
    }
}
