//! The ZSL abstract syntax tree.

/// Binary operators.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (exact field division)
    Div,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `&&`
    And,
    /// `||`
    Or,
    /// `&` — bitwise AND over u32-ranged operands (gadget-backed).
    BitAnd,
    /// `^` — bitwise XOR over u32-ranged operands (gadget-backed).
    BitXor,
    /// `|` — bitwise OR over u32-ranged operands (gadget-backed).
    BitOr,
}

/// Unary operators.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical negation of a 0/1 value.
    Not,
}

/// An expression.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal.
    Num(i64),
    /// Variable reference.
    Ident(String),
    /// Array element `name[index]`; the index must be a compile-time
    /// constant after loop unrolling (§5.4: data-dependent indices are
    /// out of scope).
    Index(String, Box<Expr>),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
}

/// A statement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Stmt {
    /// `var name = init;` or `var name[n];` — local declaration (arrays
    /// initialize to zero).
    Var {
        /// Variable name.
        name: String,
        /// Array size, if an array.
        size: Option<usize>,
        /// Initializer (scalars only).
        init: Option<Expr>,
    },
    /// `name = expr;` or `name[i] = expr;`.
    Assign {
        /// Target name.
        name: String,
        /// Element index for array targets.
        index: Option<Expr>,
        /// Right-hand side.
        value: Expr,
    },
    /// `for v in lo..hi { ... }` — bounds must be compile-time constants;
    /// the loop is unrolled.
    For {
        /// Loop variable (a compile-time constant inside the body).
        var: String,
        /// Inclusive lower bound expression.
        lo: Expr,
        /// Exclusive upper bound expression.
        hi: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `if (cond) { ... } else { ... }` — a constant condition selects a
    /// branch at compile time; otherwise both branches run and assigned
    /// variables are merged with multiplexers.
    If {
        /// The condition.
        cond: Expr,
        /// Then-branch body.
        then_body: Vec<Stmt>,
        /// Else-branch body (may be empty).
        else_body: Vec<Stmt>,
    },
}

/// A parsed ZSL program.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Program {
    /// Declared inputs: `(name, array size)`.
    pub inputs: Vec<(String, Option<usize>)>,
    /// Declared outputs: `(name, array size)`.
    pub outputs: Vec<(String, Option<usize>)>,
    /// Statements.
    pub body: Vec<Stmt>,
}
