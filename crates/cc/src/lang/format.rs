//! A pretty-printer for ZSL programs.
//!
//! Emits canonical source that re-parses to the identical AST — useful
//! for debugging generated programs (the benchmark generators emit
//! thousands of lines) and tested by a parse→print→parse round-trip
//! property.

use core::fmt::Write as _;

use super::ast::{BinOp, Expr, Program, Stmt, UnOp};

/// Operator precedence for minimal parenthesization (higher binds
/// tighter), mirroring the parser's grammar levels.
fn precedence(op: BinOp) -> u8 {
    match op {
        BinOp::Or => 1,
        BinOp::And => 2,
        BinOp::BitOr => 3,
        BinOp::BitXor => 4,
        BinOp::BitAnd => 5,
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne => 6,
        BinOp::Add | BinOp::Sub => 7,
        BinOp::Mul | BinOp::Div => 8,
    }
}

fn op_str(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
        BinOp::Eq => "==",
        BinOp::Ne => "!=",
        BinOp::And => "&&",
        BinOp::Or => "||",
        BinOp::BitAnd => "&",
        BinOp::BitXor => "^",
        BinOp::BitOr => "|",
    }
}

/// Formats an expression with minimal parentheses.
pub fn format_expr(e: &Expr) -> String {
    let mut out = String::new();
    write_expr(&mut out, e, 0);
    out
}

fn write_expr(out: &mut String, e: &Expr, parent_prec: u8) {
    match e {
        Expr::Num(n) => {
            if *n < 0 {
                // Negative literals are spelled `(0 - k)` so the printed
                // form stays within the grammar the parser accepts.
                let _ = write!(out, "(0 - {})", -n);
            } else {
                let _ = write!(out, "{n}");
            }
        }
        Expr::Ident(name) => out.push_str(name),
        Expr::Index(name, idx) => {
            let _ = write!(out, "{name}[");
            write_expr(out, idx, 0);
            out.push(']');
        }
        Expr::Unary(op, inner) => {
            out.push(match op {
                UnOp::Neg => '-',
                UnOp::Not => '!',
            });
            // Unary binds tighter than any binary operator.
            write_expr(out, inner, 9);
        }
        Expr::Binary(op, l, r) => {
            let prec = precedence(*op);
            let needs_parens = prec < parent_prec
                // Comparisons don't associate in the grammar.
                || (prec == 6 && parent_prec == 6);
            if needs_parens {
                out.push('(');
            }
            write_expr(out, l, prec);
            let _ = write!(out, " {} ", op_str(*op));
            // Right side of left-associative operators needs one more
            // level (so `a - (b - c)` keeps its parentheses).
            write_expr(out, r, prec + 1);
            if needs_parens {
                out.push(')');
            }
        }
    }
}

/// Formats a whole program.
pub fn format_program(p: &Program) -> String {
    let mut out = String::new();
    for (name, size) in &p.inputs {
        match size {
            Some(n) => {
                let _ = writeln!(out, "input {name}[{n}];");
            }
            None => {
                let _ = writeln!(out, "input {name};");
            }
        }
    }
    for (name, size) in &p.outputs {
        match size {
            Some(n) => {
                let _ = writeln!(out, "output {name}[{n}];");
            }
            None => {
                let _ = writeln!(out, "output {name};");
            }
        }
    }
    for s in &p.body {
        write_stmt(&mut out, s, 0);
    }
    out
}

fn write_stmt(out: &mut String, s: &Stmt, indent: usize) {
    let pad = "    ".repeat(indent);
    match s {
        Stmt::Var { name, size, init } => match (size, init) {
            (Some(n), _) => {
                let _ = writeln!(out, "{pad}var {name}[{n}];");
            }
            (None, Some(e)) => {
                let _ = writeln!(out, "{pad}var {name} = {};", format_expr(e));
            }
            (None, None) => {
                let _ = writeln!(out, "{pad}var {name};");
            }
        },
        Stmt::Assign { name, index, value } => match index {
            Some(i) => {
                let _ = writeln!(
                    out,
                    "{pad}{name}[{}] = {};",
                    format_expr(i),
                    format_expr(value)
                );
            }
            None => {
                let _ = writeln!(out, "{pad}{name} = {};", format_expr(value));
            }
        },
        Stmt::For { var, lo, hi, body } => {
            let _ = writeln!(
                out,
                "{pad}for {var} in {}..{} {{",
                format_expr(lo),
                format_expr(hi)
            );
            for s in body {
                write_stmt(out, s, indent + 1);
            }
            let _ = writeln!(out, "{pad}}}");
        }
        Stmt::If {
            cond,
            then_body,
            else_body,
        } => {
            let _ = writeln!(out, "{pad}if ({}) {{", format_expr(cond));
            for s in then_body {
                write_stmt(out, s, indent + 1);
            }
            if else_body.is_empty() {
                let _ = writeln!(out, "{pad}}}");
            } else {
                let _ = writeln!(out, "{pad}}} else {{");
                for s in else_body {
                    write_stmt(out, s, indent + 1);
                }
                let _ = writeln!(out, "{pad}}}");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::parser::parse;
    use super::*;

    fn round_trip(src: &str) {
        let ast1 = parse(src).expect("parses");
        let printed = format_program(&ast1);
        let ast2 = parse(&printed).unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        assert_eq!(ast1, ast2, "printed form:\n{printed}");
    }

    #[test]
    fn round_trips_benchmark_style_programs() {
        round_trip(
            "input a[4]; output y; var t = 0;
             for i in 0..4 { t = t + a[i] * a[i]; }
             if (t < 10) { y = t; } else { y = 10; }",
        );
    }

    #[test]
    fn round_trips_precedence() {
        round_trip("input a; input b; output y; y = a + b * a - b / 2;");
        round_trip("input a; input b; output y; y = (a + b) * (a - b);");
        round_trip("input a; input b; output y; y = a - (b - 3);");
        round_trip("input a; input b; output y; y = !(a < b) && (a != 3 || b == 1);");
        round_trip("input a; input b; output y; y = a & b ^ (a | b) & 255;");
        round_trip("input a; input b; output y; y = (a ^ b) & (a | 7) ^ b;");
    }

    #[test]
    fn round_trips_unary_and_negative_literals() {
        round_trip("input a; output y; y = -a + 3;");
        round_trip("input a; output y; if (a < 0 - 5) { y = -a; }");
    }

    #[test]
    fn round_trips_nested_control_flow() {
        round_trip(
            "input a[2]; output y[2];
             for i in 0..2 {
                 if (a[i] == 0) { y[i] = 1; } else { if (a[i] < 0) { y[i] = 2; } }
             }",
        );
    }

    #[test]
    fn round_trips_generated_benchmarks() {
        // The real generators' output must round-trip too.
        for src in [
            crate::lang::parse(&test_apps_pam()).map(|p| format_program(&p)),
        ]
        .into_iter()
        .flatten()
        {
            let a = parse(&src).expect("reparse");
            let b = parse(&format_program(&a)).expect("re-reparse");
            assert_eq!(a, b);
        }
    }

    /// A PAM-like generated snippet (the apps crate depends on this one,
    /// not vice versa, so a representative excerpt is inlined).
    fn test_apps_pam() -> String {
        "input x[12];\noutput best;\nvar dist[9];\nfor i in 0..3 {\n    for j in 0..3 {\n        var dd = 0;\n        for k in 0..4 {\n            dd = dd + (x[i*4+k] - x[j*4+k]) * (x[i*4+k] - x[j*4+k]);\n        }\n        dist[i*3+j] = dd;\n    }\n}\nbest = dist[1];\n".to_string()
    }

    #[test]
    fn expression_formatting() {
        let ast = parse("input a; output y; y = a * (a + 1);").unwrap();
        let printed = format_program(&ast);
        assert!(printed.contains("y = a * (a + 1);"), "{printed}");
    }
}
