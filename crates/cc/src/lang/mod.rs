//! ZSL: a small imperative language compiled to constraints.
//!
//! ZSL stands in for the SFDL front-end of the paper's compiler (§1, §5.1:
//! "translate computations written in SFDL to constraints in quadratic
//! form"). It supports the constructs the paper lists in §2.2 — arithmetic,
//! if-then-else, logical tests and connectives, equality and order
//! comparisons — plus bounded `for` loops and fixed-size arrays with
//! compile-time indices. Loops are fully unrolled and both branches of
//! data-dependent conditionals are evaluated and merged with multiplexers
//! (the Fairplay-descended "list of assignment statements" strategy).
//!
//! # Example
//!
//! ```
//! use zaatar_cc::lang::{compile, CompileOptions};
//! use zaatar_field::{Field, F61};
//!
//! let src = r"
//!     input a[3];
//!     output max;
//!     var m = a[0];
//!     for i in 1..3 {
//!         if (m < a[i]) { m = a[i]; }
//!     }
//!     max = m;
//! ";
//! let compiled = compile::<F61>(src, &CompileOptions::default()).unwrap();
//! let inputs: Vec<F61> = [5u64, 9, 2].iter().map(|&v| F61::from_u64(v)).collect();
//! let outputs = compiled.solver.run(&inputs).unwrap();
//! assert_eq!(outputs, vec![F61::from_u64(9)]);
//! ```

pub mod ast;
pub mod compile;
pub mod format;
pub mod parser;

pub use ast::{BinOp, Expr, Program, Stmt, UnOp};
pub use compile::{compile, Compiled, CompileError, CompileOptions};
pub use format::{format_expr, format_program};
pub use parser::parse;
