//! Lexer and recursive-descent parser for ZSL.

use super::ast::{BinOp, Expr, Program, Stmt, UnOp};
use super::compile::CompileError;

/// Lexical token.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Num(i64),
    KwInput,
    KwOutput,
    KwVar,
    KwFor,
    KwIn,
    KwIf,
    KwElse,
    Plus,
    Minus,
    Star,
    Slash,
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Assign,
    EqEq,
    NotEq,
    Lt,
    Le,
    Gt,
    Ge,
    AndAnd,
    OrOr,
    Amp,
    Caret,
    Pipe,
    Bang,
    DotDot,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
        }
    }

    fn error(&self, msg: impl Into<String>) -> CompileError {
        CompileError::new(msg, self.line)
    }

    fn tokenize(mut self) -> Result<Vec<(Tok, usize)>, CompileError> {
        let mut out = Vec::new();
        while self.pos < self.src.len() {
            let c = self.src[self.pos];
            match c {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                b' ' | b'\t' | b'\r' => self.pos += 1,
                b'/' if self.peek(1) == Some(b'/') => {
                    while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
                        self.pos += 1;
                    }
                }
                b'0'..=b'9' => {
                    let start = self.pos;
                    while self.pos < self.src.len() && self.src[self.pos].is_ascii_digit() {
                        self.pos += 1;
                    }
                    let text = core::str::from_utf8(&self.src[start..self.pos])
                        .expect("digits are valid UTF-8");
                    let n: i64 = text
                        .parse()
                        .map_err(|_| self.error(format!("integer literal too large: {text}")))?;
                    out.push((Tok::Num(n), self.line));
                }
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                    let start = self.pos;
                    while self.pos < self.src.len()
                        && (self.src[self.pos].is_ascii_alphanumeric() || self.src[self.pos] == b'_')
                    {
                        self.pos += 1;
                    }
                    let text = core::str::from_utf8(&self.src[start..self.pos])
                        .expect("idents are valid UTF-8");
                    let tok = match text {
                        "input" => Tok::KwInput,
                        "output" => Tok::KwOutput,
                        "var" => Tok::KwVar,
                        "for" => Tok::KwFor,
                        "in" => Tok::KwIn,
                        "if" => Tok::KwIf,
                        "else" => Tok::KwElse,
                        _ => Tok::Ident(text.to_string()),
                    };
                    out.push((tok, self.line));
                }
                _ => {
                    let two = (c, self.peek(1));
                    let (tok, len) = match two {
                        (b'=', Some(b'=')) => (Tok::EqEq, 2),
                        (b'!', Some(b'=')) => (Tok::NotEq, 2),
                        (b'<', Some(b'=')) => (Tok::Le, 2),
                        (b'>', Some(b'=')) => (Tok::Ge, 2),
                        (b'&', Some(b'&')) => (Tok::AndAnd, 2),
                        (b'|', Some(b'|')) => (Tok::OrOr, 2),
                        (b'.', Some(b'.')) => (Tok::DotDot, 2),
                        (b'+', _) => (Tok::Plus, 1),
                        (b'-', _) => (Tok::Minus, 1),
                        (b'*', _) => (Tok::Star, 1),
                        (b'/', _) => (Tok::Slash, 1),
                        (b'(', _) => (Tok::LParen, 1),
                        (b')', _) => (Tok::RParen, 1),
                        (b'{', _) => (Tok::LBrace, 1),
                        (b'}', _) => (Tok::RBrace, 1),
                        (b'[', _) => (Tok::LBracket, 1),
                        (b']', _) => (Tok::RBracket, 1),
                        (b';', _) => (Tok::Semi, 1),
                        (b'=', _) => (Tok::Assign, 1),
                        (b'<', _) => (Tok::Lt, 1),
                        (b'>', _) => (Tok::Gt, 1),
                        (b'!', _) => (Tok::Bang, 1),
                        (b'&', _) => (Tok::Amp, 1),
                        (b'|', _) => (Tok::Pipe, 1),
                        (b'^', _) => (Tok::Caret, 1),
                        _ => return Err(self.error(format!("unexpected character '{}'", c as char))),
                    };
                    out.push((tok, self.line));
                    self.pos += len;
                }
            }
        }
        Ok(out)
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }
}

struct Parser {
    toks: Vec<(Tok, usize)>,
    pos: usize,
}

impl Parser {
    fn line(&self) -> usize {
        self.toks
            .get(self.pos)
            .or_else(|| self.toks.last())
            .map_or(0, |(_, l)| *l)
    }

    fn error(&self, msg: impl Into<String>) -> CompileError {
        CompileError::new(msg, self.line())
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(t, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, tok: Tok) -> Result<(), CompileError> {
        match self.next() {
            Some(t) if t == tok => Ok(()),
            Some(t) => Err(self.error(format!("expected {tok:?}, found {t:?}"))),
            None => Err(self.error(format!("expected {tok:?}, found end of input"))),
        }
    }

    fn expect_ident(&mut self) -> Result<String, CompileError> {
        match self.next() {
            Some(Tok::Ident(name)) => Ok(name),
            other => Err(self.error(format!("expected identifier, found {other:?}"))),
        }
    }

    fn parse_program(&mut self) -> Result<Program, CompileError> {
        let mut prog = Program::default();
        // Declarations first.
        loop {
            match self.peek() {
                Some(Tok::KwInput) => {
                    self.next();
                    let (name, size) = self.parse_decl_tail()?;
                    prog.inputs.push((name, size));
                }
                Some(Tok::KwOutput) => {
                    self.next();
                    let (name, size) = self.parse_decl_tail()?;
                    prog.outputs.push((name, size));
                }
                _ => break,
            }
        }
        while self.peek().is_some() {
            prog.body.push(self.parse_stmt()?);
        }
        Ok(prog)
    }

    fn parse_decl_tail(&mut self) -> Result<(String, Option<usize>), CompileError> {
        let name = self.expect_ident()?;
        let size = if self.peek() == Some(&Tok::LBracket) {
            self.next();
            let n = match self.next() {
                Some(Tok::Num(n)) if n > 0 => n as usize,
                other => return Err(self.error(format!("expected array size, found {other:?}"))),
            };
            self.expect(Tok::RBracket)?;
            Some(n)
        } else {
            None
        };
        self.expect(Tok::Semi)?;
        Ok((name, size))
    }

    fn parse_block(&mut self) -> Result<Vec<Stmt>, CompileError> {
        self.expect(Tok::LBrace)?;
        let mut body = Vec::new();
        while self.peek() != Some(&Tok::RBrace) {
            if self.peek().is_none() {
                return Err(self.error("unterminated block"));
            }
            body.push(self.parse_stmt()?);
        }
        self.expect(Tok::RBrace)?;
        Ok(body)
    }

    fn parse_stmt(&mut self) -> Result<Stmt, CompileError> {
        match self.peek() {
            Some(Tok::KwVar) => {
                self.next();
                let name = self.expect_ident()?;
                if self.peek() == Some(&Tok::LBracket) {
                    self.next();
                    let n = match self.next() {
                        Some(Tok::Num(n)) if n > 0 => n as usize,
                        other => {
                            return Err(self.error(format!("expected array size, found {other:?}")))
                        }
                    };
                    self.expect(Tok::RBracket)?;
                    self.expect(Tok::Semi)?;
                    Ok(Stmt::Var {
                        name,
                        size: Some(n),
                        init: None,
                    })
                } else {
                    let init = if self.peek() == Some(&Tok::Assign) {
                        self.next();
                        Some(self.parse_expr()?)
                    } else {
                        None
                    };
                    self.expect(Tok::Semi)?;
                    Ok(Stmt::Var {
                        name,
                        size: None,
                        init,
                    })
                }
            }
            Some(Tok::KwFor) => {
                self.next();
                let var = self.expect_ident()?;
                self.expect(Tok::KwIn)?;
                let lo = self.parse_expr()?;
                self.expect(Tok::DotDot)?;
                let hi = self.parse_expr()?;
                let body = self.parse_block()?;
                Ok(Stmt::For { var, lo, hi, body })
            }
            Some(Tok::KwIf) => {
                self.next();
                self.expect(Tok::LParen)?;
                let cond = self.parse_expr()?;
                self.expect(Tok::RParen)?;
                let then_body = self.parse_block()?;
                let else_body = if self.peek() == Some(&Tok::KwElse) {
                    self.next();
                    if self.peek() == Some(&Tok::KwIf) {
                        vec![self.parse_stmt()?]
                    } else {
                        self.parse_block()?
                    }
                } else {
                    Vec::new()
                };
                Ok(Stmt::If {
                    cond,
                    then_body,
                    else_body,
                })
            }
            Some(Tok::Ident(_)) => {
                let name = self.expect_ident()?;
                let index = if self.peek() == Some(&Tok::LBracket) {
                    self.next();
                    let e = self.parse_expr()?;
                    self.expect(Tok::RBracket)?;
                    Some(e)
                } else {
                    None
                };
                self.expect(Tok::Assign)?;
                let value = self.parse_expr()?;
                self.expect(Tok::Semi)?;
                Ok(Stmt::Assign { name, index, value })
            }
            other => Err(self.error(format!("expected statement, found {other:?}"))),
        }
    }

    fn parse_expr(&mut self) -> Result<Expr, CompileError> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.parse_and()?;
        while self.peek() == Some(&Tok::OrOr) {
            self.next();
            let rhs = self.parse_and()?;
            lhs = Expr::Binary(BinOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.parse_bitor()?;
        while self.peek() == Some(&Tok::AndAnd) {
            self.next();
            let rhs = self.parse_bitor()?;
            lhs = Expr::Binary(BinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_bitor(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.parse_bitxor()?;
        while self.peek() == Some(&Tok::Pipe) {
            self.next();
            let rhs = self.parse_bitxor()?;
            lhs = Expr::Binary(BinOp::BitOr, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_bitxor(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.parse_bitand()?;
        while self.peek() == Some(&Tok::Caret) {
            self.next();
            let rhs = self.parse_bitand()?;
            lhs = Expr::Binary(BinOp::BitXor, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_bitand(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.parse_cmp()?;
        while self.peek() == Some(&Tok::Amp) {
            self.next();
            let rhs = self.parse_cmp()?;
            lhs = Expr::Binary(BinOp::BitAnd, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_cmp(&mut self) -> Result<Expr, CompileError> {
        let lhs = self.parse_add()?;
        let op = match self.peek() {
            Some(Tok::Lt) => BinOp::Lt,
            Some(Tok::Le) => BinOp::Le,
            Some(Tok::Gt) => BinOp::Gt,
            Some(Tok::Ge) => BinOp::Ge,
            Some(Tok::EqEq) => BinOp::Eq,
            Some(Tok::NotEq) => BinOp::Ne,
            _ => return Ok(lhs),
        };
        self.next();
        let rhs = self.parse_add()?;
        Ok(Expr::Binary(op, Box::new(lhs), Box::new(rhs)))
    }

    fn parse_add(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.parse_mul()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Plus) => BinOp::Add,
                Some(Tok::Minus) => BinOp::Sub,
                _ => break,
            };
            self.next();
            let rhs = self.parse_mul()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_mul(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Star) => BinOp::Mul,
                Some(Tok::Slash) => BinOp::Div,
                _ => break,
            };
            self.next();
            let rhs = self.parse_unary()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr, CompileError> {
        match self.peek() {
            Some(Tok::Minus) => {
                self.next();
                Ok(Expr::Unary(UnOp::Neg, Box::new(self.parse_unary()?)))
            }
            Some(Tok::Bang) => {
                self.next();
                Ok(Expr::Unary(UnOp::Not, Box::new(self.parse_unary()?)))
            }
            _ => self.parse_primary(),
        }
    }

    fn parse_primary(&mut self) -> Result<Expr, CompileError> {
        match self.next() {
            Some(Tok::Num(n)) => Ok(Expr::Num(n)),
            Some(Tok::Ident(name)) => {
                if self.peek() == Some(&Tok::LBracket) {
                    self.next();
                    let idx = self.parse_expr()?;
                    self.expect(Tok::RBracket)?;
                    Ok(Expr::Index(name, Box::new(idx)))
                } else {
                    Ok(Expr::Ident(name))
                }
            }
            Some(Tok::LParen) => {
                let e = self.parse_expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            other => Err(self.error(format!("expected expression, found {other:?}"))),
        }
    }
}

/// Parses ZSL source into a [`Program`].
pub fn parse(src: &str) -> Result<Program, CompileError> {
    let toks = Lexer::new(src).tokenize()?;
    let mut parser = Parser { toks, pos: 0 };
    parser.parse_program()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_declarations() {
        let p = parse("input a; input b[4]; output y;").unwrap();
        assert_eq!(p.inputs, vec![("a".into(), None), ("b".into(), Some(4))]);
        assert_eq!(p.outputs, vec![("y".into(), None)]);
        assert!(p.body.is_empty());
    }

    #[test]
    fn parses_precedence() {
        let p = parse("input a; output y; y = a + 2 * 3;").unwrap();
        match &p.body[0] {
            Stmt::Assign { value, .. } => match value {
                Expr::Binary(BinOp::Add, _, rhs) => {
                    assert!(matches!(**rhs, Expr::Binary(BinOp::Mul, _, _)));
                }
                other => panic!("wrong tree: {other:?}"),
            },
            other => panic!("wrong stmt: {other:?}"),
        }
    }

    #[test]
    fn parses_for_and_if() {
        let src = "
            input a[2]; output y;
            var t = 0;
            for i in 0..2 {
                if (a[i] < 5) { t = t + a[i]; } else { t = t + 5; }
            }
            y = t;
        ";
        let p = parse(src).unwrap();
        assert_eq!(p.body.len(), 3);
        assert!(matches!(p.body[1], Stmt::For { .. }));
    }

    #[test]
    fn parses_else_if_chain() {
        let src = "input a; output y; if (a < 1) { y = 0; } else if (a < 2) { y = 1; } else { y = 2; }";
        let p = parse(src).unwrap();
        match &p.body[0] {
            Stmt::If { else_body, .. } => {
                assert_eq!(else_body.len(), 1);
                assert!(matches!(else_body[0], Stmt::If { .. }));
            }
            other => panic!("wrong stmt: {other:?}"),
        }
    }

    #[test]
    fn parses_logical_ops_and_unary() {
        let p = parse("input a; input b; output y; y = !(a < b) && (a != b || b == 3);").unwrap();
        assert_eq!(p.body.len(), 1);
    }

    #[test]
    fn comments_are_skipped() {
        let p = parse("// leading\ninput a; // trailing\noutput y;\ny = a; // done").unwrap();
        assert_eq!(p.body.len(), 1);
    }

    #[test]
    fn error_reports_line() {
        let err = parse("input a;\noutput y;\ny = @;").unwrap_err();
        assert_eq!(err.line, 3);
    }

    #[test]
    fn error_on_missing_semi() {
        assert!(parse("input a; output y; y = a").is_err());
    }

    #[test]
    fn error_on_unterminated_block() {
        assert!(parse("input a; output y; for i in 0..2 { y = a;").is_err());
    }
}
