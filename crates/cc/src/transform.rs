//! The Ginger → Zaatar constraint transformation (§4).
//!
//! Zaatar requires every constraint in *quadratic form* `p_A·p_B = p_C`.
//! Given a set of Ginger (general degree-2) constraints, the paper's
//! compiler "retains all of the degree-1 terms and replaces all degree-2
//! terms with a new variable", then adds one product constraint per
//! **distinct** degree-2 term. The number of distinct terms is the `K₂`
//! of Fig. 3: `|Z_zaatar| = |Z_ginger| + K₂` and
//! `|C_zaatar| = |C_ginger| + K₂`.

use std::collections::HashMap;

use zaatar_field::Field;

use crate::ir::{
    Assignment, GingerSystem, Kind, LinComb, QuadConstraint, QuadSystem, VarId,
};

/// The result of the transformation: the quadratic-form system plus the
/// bookkeeping needed to extend witnesses.
#[derive(Clone, Debug)]
pub struct QuadTransform<F> {
    /// The quadratic-form ("Zaatar") system.
    pub system: QuadSystem<F>,
    /// For each introduced variable, the degree-2 term it replaces.
    pub product_vars: Vec<(VarId, (VarId, VarId))>,
}

impl<F: Field> QuadTransform<F> {
    /// Extends a satisfying assignment of the source Ginger system with
    /// values for the introduced product variables.
    pub fn extend_assignment(&self, ginger_assignment: &Assignment<F>) -> Assignment<F> {
        let mut values = ginger_assignment.values().to_vec();
        values.resize(self.system.vars.len(), F::ZERO);
        let mut out = Assignment::from_values(values);
        for (v, (i, j)) in &self.product_vars {
            let prod = out.get(*i) * out.get(*j);
            out.set(*v, prod);
        }
        out
    }

    /// The number of distinct degree-2 terms replaced (`K₂` of Fig. 3).
    pub fn k2(&self) -> usize {
        self.product_vars.len()
    }
}

/// Transforms a Ginger system into quadratic form, exactly as §4
/// describes (the worked example there:
/// `{3·Z₁Z₂ + 2·Z₃Z₄ + Z₅ − Z₆ = 0}` becomes
/// `{(3·Z′₁ + 2·Z′₂ + Z₅)·(1) = Z₆, Z₁Z₂ = Z′₁, Z₃Z₄ = Z′₂}`).
pub fn ginger_to_quad<F: Field>(sys: &GingerSystem<F>) -> QuadTransform<F> {
    let mut vars = sys.vars.clone();
    let mut term_var: HashMap<(VarId, VarId), VarId> = HashMap::new();
    let mut product_vars = Vec::new();
    let mut constraints = Vec::new();

    for c in &sys.constraints {
        let mut replaced = c.linear.clone();
        for (i, j, coeff) in &c.quad {
            let v = *term_var.entry((*i, *j)).or_insert_with(|| {
                let v = vars.alloc(Kind::Aux);
                product_vars.push((v, (*i, *j)));
                v
            });
            replaced = replaced.add(&LinComb::scaled_var(v, *coeff));
        }
        // (degree-1 expression) · 1 = 0.
        constraints.push(QuadConstraint {
            a: replaced,
            b: LinComb::constant(F::ONE),
            c: LinComb::zero(),
        });
    }
    // One product constraint per distinct degree-2 term: Zᵢ·Zⱼ = Z′.
    for (v, (i, j)) in &product_vars {
        constraints.push(QuadConstraint {
            a: LinComb::var(*i),
            b: LinComb::var(*j),
            c: LinComb::var(*v),
        });
    }

    QuadTransform {
        system: QuadSystem { vars, constraints },
        product_vars,
    }
}

/// A lightly optimized variant used for ablation: Ginger constraints whose
/// quadratic part is a *single* degree-2 term are emitted directly as
/// `(coeff·Zᵢ)·(Zⱼ) = −linear` without a new variable. Constraints with
/// several degree-2 terms still go through the §4 replacement.
///
/// This is *not* the paper's transformation — it exists so the benches can
/// measure how much of Zaatar's constraint growth the mechanical rule
/// costs (DESIGN.md §5, "degenerate `K₂` regime").
pub fn ginger_to_quad_optimized<F: Field>(sys: &GingerSystem<F>) -> QuadTransform<F> {
    let mut vars = sys.vars.clone();
    let mut term_var: HashMap<(VarId, VarId), VarId> = HashMap::new();
    let mut product_vars = Vec::new();
    let mut constraints = Vec::new();

    for c in &sys.constraints {
        if c.quad.len() == 1 {
            let (i, j, coeff) = c.quad[0];
            constraints.push(QuadConstraint {
                a: LinComb::scaled_var(i, coeff),
                b: LinComb::var(j),
                c: c.linear.scale(-F::ONE),
            });
            continue;
        }
        let mut replaced = c.linear.clone();
        for (i, j, coeff) in &c.quad {
            let v = *term_var.entry((*i, *j)).or_insert_with(|| {
                let v = vars.alloc(Kind::Aux);
                product_vars.push((v, (*i, *j)));
                v
            });
            replaced = replaced.add(&LinComb::scaled_var(v, *coeff));
        }
        constraints.push(QuadConstraint {
            a: replaced,
            b: LinComb::constant(F::ONE),
            c: LinComb::zero(),
        });
    }
    for (v, (i, j)) in &product_vars {
        constraints.push(QuadConstraint {
            a: LinComb::var(*i),
            b: LinComb::var(*j),
            c: LinComb::var(*v),
        });
    }

    QuadTransform {
        system: QuadSystem { vars, constraints },
        product_vars,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Builder;
    use crate::ir::{GingerConstraint, VarRegistry};
    use zaatar_field::{Field, F61};

    fn f(x: i64) -> F61 {
        F61::from_i64(x)
    }

    /// Builds the §4 worked example directly.
    fn section4_example() -> GingerSystem<F61> {
        let mut vars = VarRegistry::default();
        let zs: Vec<VarId> = (0..6).map(|_| vars.alloc(Kind::Aux)).collect();
        let linear = LinComb::var(zs[4]).sub(&LinComb::var(zs[5]));
        GingerSystem {
            vars,
            constraints: vec![GingerConstraint {
                quad: vec![(zs[0], zs[1], f(3)), (zs[2], zs[3], f(2))],
                linear,
            }],
        }
    }

    #[test]
    fn worked_example_counts() {
        let sys = section4_example();
        let t = ginger_to_quad(&sys);
        // 1 original constraint + K₂ = 2 product constraints.
        assert_eq!(t.k2(), 2);
        assert_eq!(t.system.constraints.len(), 3);
        assert_eq!(t.system.vars.len(), 8);
    }

    #[test]
    fn worked_example_equisatisfiable() {
        let sys = section4_example();
        let t = ginger_to_quad(&sys);
        // 3·(2·7) + 2·(3·4) + z5 − z6 = 0 → z6 = 42 + 24 + z5.
        let mut asg = Assignment::from_values(vec![f(2), f(7), f(3), f(4), f(10), f(76)]);
        assert!(sys.is_satisfied(&asg));
        let extended = t.extend_assignment(&asg);
        assert!(t.system.is_satisfied(&extended));
        // Break the assignment: both must reject.
        asg.set(VarId(5), f(77));
        assert!(!sys.is_satisfied(&asg));
        let broken = t.extend_assignment(&asg);
        assert!(!t.system.is_satisfied(&broken));
    }

    #[test]
    fn distinct_terms_are_shared_across_constraints() {
        // Two constraints both using Z0·Z1 must share one product var.
        let mut vars = VarRegistry::default();
        let z0 = vars.alloc(Kind::Aux);
        let z1 = vars.alloc(Kind::Aux);
        let sys = GingerSystem::<F61> {
            vars,
            constraints: vec![
                GingerConstraint {
                    quad: vec![(z0, z1, f(1))],
                    linear: LinComb::constant(f(-6)),
                },
                GingerConstraint {
                    quad: vec![(z0, z1, f(2))],
                    linear: LinComb::constant(f(-12)),
                },
            ],
        };
        let t = ginger_to_quad(&sys);
        assert_eq!(t.k2(), 1);
        assert_eq!(t.system.constraints.len(), 3);
    }

    #[test]
    fn builder_output_survives_transform() {
        // Full pipeline: gadget build → solve → transform → extend → check.
        let mut b = Builder::<F61>::new();
        let x = b.alloc_input();
        let y = b.alloc_input();
        let xy = b.mul(&x, &y);
        let lt = b.less_than(&x, &y, 8);
        let sel = b.mux(&lt, &xy, &x);
        b.bind_output(&sel);
        let (sys, solver) = b.finish();
        let t = ginger_to_quad(&sys);
        for inputs in [[f(3), f(9)], [f(9), f(3)]] {
            let asg = solver.solve(&inputs).unwrap();
            assert!(sys.is_satisfied(&asg));
            let ext = t.extend_assignment(&asg);
            assert!(t.system.is_satisfied(&ext));
        }
    }

    #[test]
    fn optimized_variant_skips_single_products() {
        let mut b = Builder::<F61>::new();
        let x = b.alloc_input();
        let y = b.alloc_input();
        let xy = b.mul(&x, &y);
        b.bind_output(&xy);
        let (sys, solver) = b.finish();
        let mech = ginger_to_quad(&sys);
        let opt = ginger_to_quad_optimized(&sys);
        // Mechanical: mul constraint has one quad term → +1 var, +1 constraint.
        assert_eq!(mech.k2(), 1);
        assert_eq!(opt.k2(), 0);
        assert_eq!(opt.system.constraints.len(), sys.constraints.len());
        let asg = solver.solve(&[f(6), f(7)]).unwrap();
        assert!(opt.extend_assignment(&asg).len() == asg.len());
        assert!(opt.system.is_satisfied(&opt.extend_assignment(&asg)));
    }

    #[test]
    fn unsatisfying_assignment_rejected_after_transform() {
        let mut b = Builder::<F61>::new();
        let x = b.alloc_input();
        let sq = b.square(&x);
        b.bind_output(&sq);
        let (sys, solver) = b.finish();
        let t = ginger_to_quad(&sys);
        let mut asg = solver.solve(&[f(5)]).unwrap();
        let out = solver.outputs()[0];
        asg.set(out, f(26));
        assert!(!sys.is_satisfied(&asg));
        assert!(!t.system.is_satisfied(&t.extend_assignment(&asg)));
    }
}

/// Io-linearization: rewrites a Ginger system so that input/output
/// variables never appear inside degree-2 terms, by introducing one aux
/// copy variable (`Z_x = X`) per offending bound variable.
///
/// The classical linear PCP (§2.2) needs this: its batched circuit
/// queries `γ₂, γ₁` must not depend on the instance's `(x, y)` — only the
/// scalar `γ₀`, which the verifier computes per instance, may. Zaatar's
/// QAP does not need the pass (its bound rows are handled in the
/// divisibility check), but applying it to both keeps the Fig. 9
/// encoding comparisons apples-to-apples.
#[derive(Clone, Debug)]
pub struct IoLinearize<F> {
    /// The rewritten system.
    pub system: GingerSystem<F>,
    /// `(copy aux var, original bound var)` pairs.
    pub copies: Vec<(VarId, VarId)>,
}

impl<F: Field> IoLinearize<F> {
    /// Extends an assignment of the original system with the copy
    /// variables' values.
    pub fn extend_assignment(&self, original: &Assignment<F>) -> Assignment<F> {
        let mut values = original.values().to_vec();
        values.resize(self.system.vars.len(), F::ZERO);
        let mut out = Assignment::from_values(values);
        for (copy, io) in &self.copies {
            let v = out.get(*io);
            out.set(*copy, v);
        }
        out
    }
}

/// Applies io-linearization (see [`IoLinearize`]).
pub fn linearize_io<F: Field>(sys: &GingerSystem<F>) -> IoLinearize<F> {
    use crate::ir::GingerConstraint;
    let mut vars = sys.vars.clone();
    let mut copy_of: HashMap<VarId, VarId> = HashMap::new();
    let mut copies = Vec::new();
    let mut constraints = Vec::new();
    let map_var = |v: VarId,
                       vars: &mut crate::ir::VarRegistry,
                       copies: &mut Vec<(VarId, VarId)>,
                       copy_of: &mut HashMap<VarId, VarId>|
     -> VarId {
        if sys.vars.kind(v) == Kind::Aux {
            return v;
        }
        *copy_of.entry(v).or_insert_with(|| {
            let c = vars.alloc(Kind::Aux);
            copies.push((c, v));
            c
        })
    };
    for c in &sys.constraints {
        let quad = c
            .quad
            .iter()
            .map(|(i, j, coeff)| {
                (
                    map_var(*i, &mut vars, &mut copies, &mut copy_of),
                    map_var(*j, &mut vars, &mut copies, &mut copy_of),
                    *coeff,
                )
            })
            .collect();
        constraints.push(GingerConstraint {
            quad,
            linear: c.linear.clone(),
        });
    }
    // Copy constraints: Z_x − X = 0.
    for (copy, io) in &copies {
        constraints.push(GingerConstraint::linear(
            LinComb::var(*copy).sub(&LinComb::var(*io)),
        ));
    }
    IoLinearize {
        system: GingerSystem { vars, constraints },
        copies,
    }
}

#[cfg(test)]
mod linearize_tests {
    use super::*;
    use crate::builder::Builder;
    use zaatar_field::{Field, F61};

    fn f(x: i64) -> F61 {
        F61::from_i64(x)
    }

    #[test]
    fn io_vars_leave_quadratic_terms() {
        let mut b = Builder::<F61>::new();
        let x = b.alloc_input();
        let y = b.alloc_input();
        let p = b.mul(&x, &y);
        b.bind_output(&p);
        let (sys, solver) = b.finish();
        let lin = linearize_io(&sys);
        for c in &lin.system.constraints {
            for (i, j, _) in &c.quad {
                assert_eq!(lin.system.vars.kind(*i), Kind::Aux);
                assert_eq!(lin.system.vars.kind(*j), Kind::Aux);
            }
        }
        // Two inputs in quad positions → two copies, two copy constraints.
        assert_eq!(lin.copies.len(), 2);
        assert_eq!(lin.system.constraints.len(), sys.constraints.len() + 2);
        // Equisatisfiability.
        let asg = solver.solve(&[f(6), f(7)]).unwrap();
        let ext = lin.extend_assignment(&asg);
        assert!(lin.system.is_satisfied(&ext));
        let mut bad = asg.clone();
        bad.set(solver.outputs()[0], f(41));
        assert!(!lin.system.is_satisfied(&lin.extend_assignment(&bad)));
    }

    #[test]
    fn aux_only_systems_unchanged() {
        let mut b = Builder::<F61>::new();
        let x = b.alloc_input();
        let t = b.mul(&x.add_constant(f(1)), &x.add_constant(f(2)));
        // t is aux; squaring it involves only aux vars.
        let t2 = b.square(&t);
        b.bind_output(&t2);
        let (sys, _) = b.finish();
        let lin = linearize_io(&sys);
        // x appears in the first mul's quad terms, so one copy; the
        // second square is aux-aux.
        assert_eq!(lin.copies.len(), 1);
        assert_eq!(lin.system.constraints.len(), sys.constraints.len() + 1);
    }
}
