//! The gadget builder: constructs a [`GingerSystem`] and, in lockstep, a
//! deterministic witness solver.
//!
//! Each gadget emits (a) constraints and (b) a *solver step* describing
//! how the prover computes the gadget's auxiliary variables from earlier
//! values. Running the steps in order (step Á of Fig. 1) executes the
//! computation and produces the satisfying assignment `z`.
//!
//! The gadget inventory matches the constructs the paper's compiler
//! supports (§2.2): field operations, if-then-else (multiplexers), logical
//! tests and connectives, `!=` via an auxiliary inverse, and order
//! comparisons via `O(log |F|)`-size bit decompositions.

use zaatar_field::PrimeField;

use crate::ir::{
    Assignment, GingerConstraint, GingerSystem, Kind, LinComb, VarId, VarRegistry,
};

/// Why witness generation failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SolveError {
    /// The supplied input vector has the wrong length.
    InputCount {
        /// Inputs expected by the system.
        expected: usize,
        /// Inputs supplied.
        got: usize,
    },
    /// A value did not fit the declared bit width (e.g. a comparison
    /// operand out of range).
    RangeOverflow {
        /// The step index that failed.
        step: usize,
        /// The width that was exceeded.
        width: usize,
    },
    /// Division by zero in a solver division step.
    DivisionByZero {
        /// The step index that failed.
        step: usize,
    },
}

impl core::fmt::Display for SolveError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SolveError::InputCount { expected, got } => {
                write!(f, "expected {expected} inputs, got {got}")
            }
            SolveError::RangeOverflow { step, width } => {
                write!(f, "step {step}: value exceeds {width} bits")
            }
            SolveError::DivisionByZero { step } => write!(f, "step {step}: division by zero"),
        }
    }
}

impl std::error::Error for SolveError {}

/// One deterministic witness-computation step.
#[derive(Clone, Debug)]
enum SolveStep<F> {
    /// `target ← lc`.
    AssignLin { target: VarId, lc: LinComb<F> },
    /// `target ← a · b`.
    Product {
        target: VarId,
        a: LinComb<F>,
        b: LinComb<F>,
    },
    /// `target ← Σ aₖ·bₖ`.
    SumOfProducts {
        target: VarId,
        pairs: Vec<(LinComb<F>, LinComb<F>)>,
    },
    /// `target ← of⁻¹` (or 0 when `of = 0`).
    InverseOrZero { target: VarId, of: LinComb<F> },
    /// `target ← (of ≠ 0)` as 0/1.
    NonZeroFlag { target: VarId, of: LinComb<F> },
    /// Little-endian bit decomposition of the canonical value of `of`;
    /// fails if the value needs more than `targets.len()` bits.
    Bits { targets: Vec<VarId>, of: LinComb<F> },
    /// `target ← num / den`; fails on zero denominator.
    Divide {
        target: VarId,
        num: LinComb<F>,
        den: LinComb<F>,
    },
}

/// Builds a [`GingerSystem`] plus its witness solver.
pub struct Builder<F> {
    vars: VarRegistry,
    constraints: Vec<GingerConstraint<F>>,
    steps: Vec<SolveStep<F>>,
    inputs: Vec<VarId>,
    outputs: Vec<VarId>,
}

impl<F: PrimeField> Default for Builder<F> {
    fn default() -> Self {
        Self::new()
    }
}

impl<F: PrimeField> Builder<F> {
    /// An empty builder.
    pub fn new() -> Self {
        Builder {
            vars: VarRegistry::default(),
            constraints: Vec::new(),
            steps: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// Declares an input variable `X`; inputs are bound positionally at
    /// solve time.
    pub fn alloc_input(&mut self) -> LinComb<F> {
        let v = self.vars.alloc(Kind::Input);
        self.inputs.push(v);
        LinComb::var(v)
    }

    /// Declares `n` inputs.
    pub fn alloc_inputs(&mut self, n: usize) -> Vec<LinComb<F>> {
        (0..n).map(|_| self.alloc_input()).collect()
    }

    /// Binds an output variable `Y` to the value of `lc`, adding the
    /// equality constraint and the solver step that computes it.
    pub fn bind_output(&mut self, lc: &LinComb<F>) -> VarId {
        let y = self.vars.alloc(Kind::Output);
        self.constraints
            .push(GingerConstraint::linear(lc.sub(&LinComb::var(y))));
        self.steps.push(SolveStep::AssignLin {
            target: y,
            lc: lc.clone(),
        });
        self.outputs.push(y);
        y
    }

    /// Allocates an unconstrained auxiliary variable (internal).
    fn aux(&mut self) -> VarId {
        self.vars.alloc(Kind::Aux)
    }

    /// Expands the product of two linear combinations into a degree-2
    /// term list plus a linear part.
    fn expand_product(a: &LinComb<F>, b: &LinComb<F>) -> (Vec<(VarId, VarId, F)>, LinComb<F>) {
        let mut quad: Vec<(VarId, VarId, F)> = Vec::new();
        for (va, ca) in a.terms() {
            for (vb, cb) in b.terms() {
                let (lo, hi) = if va <= vb { (*va, *vb) } else { (*vb, *va) };
                let coeff = *ca * *cb;
                if let Some(entry) = quad.iter_mut().find(|(i, j, _)| *i == lo && *j == hi) {
                    entry.2 += coeff;
                } else {
                    quad.push((lo, hi, coeff));
                }
            }
        }
        quad.retain(|(_, _, c)| !c.is_zero());
        let linear = b
            .scale(a.constant_term())
            .add(&a.scale(b.constant_term()))
            .add_constant(-a.constant_term() * b.constant_term());
        (quad, linear)
    }

    /// Enforces `lc = 0`.
    pub fn enforce_zero(&mut self, lc: &LinComb<F>) {
        self.constraints.push(GingerConstraint::linear(lc.clone()));
    }

    /// Enforces `a = b`.
    pub fn enforce_eq(&mut self, a: &LinComb<F>, b: &LinComb<F>) {
        self.enforce_zero(&a.sub(b));
    }

    /// Enforces `a · b = c` as one Ginger constraint.
    pub fn enforce_product(&mut self, a: &LinComb<F>, b: &LinComb<F>, c: &LinComb<F>) {
        let (quad, linear) = Self::expand_product(a, b);
        self.constraints.push(GingerConstraint {
            quad,
            linear: linear.sub(c),
        });
    }

    /// Multiplies two combinations, returning a fresh variable holding
    /// the product (one constraint).
    pub fn mul(&mut self, a: &LinComb<F>, b: &LinComb<F>) -> LinComb<F> {
        // Constant folding: products with a constant are free.
        if a.is_constant() {
            return b.scale(a.constant_term());
        }
        if b.is_constant() {
            return a.scale(b.constant_term());
        }
        let v = self.aux();
        self.enforce_product(a, b, &LinComb::var(v));
        self.steps.push(SolveStep::Product {
            target: v,
            a: a.clone(),
            b: b.clone(),
        });
        LinComb::var(v)
    }

    /// Squares a combination.
    pub fn square(&mut self, a: &LinComb<F>) -> LinComb<F> {
        self.mul(&a.clone(), &a.clone())
    }

    /// Materializes a linear combination into a fresh variable with the
    /// constraint `v = lc` (the per-assignment variable of the paper's
    /// Fairplay-descended compiler).
    pub fn materialize(&mut self, lc: &LinComb<F>) -> LinComb<F> {
        let v = self.aux();
        self.enforce_zero(&lc.sub(&LinComb::var(v)));
        self.steps.push(SolveStep::AssignLin {
            target: v,
            lc: lc.clone(),
        });
        LinComb::var(v)
    }

    /// Computes `Σ aₖ·bₖ` as a *single* Ginger constraint with one new
    /// variable — the encoding the paper's compiler uses for dot products
    /// and sums of squares (this is what makes `K₂` grow; see §4's
    /// degenerate-case discussion).
    pub fn sum_of_products(&mut self, pairs: &[(LinComb<F>, LinComb<F>)]) -> LinComb<F> {
        let v = self.aux();
        let mut quad_total: Vec<(VarId, VarId, F)> = Vec::new();
        let mut linear_total = LinComb::zero();
        for (a, b) in pairs {
            let (quad, linear) = Self::expand_product(a, b);
            for (i, j, c) in quad {
                if let Some(entry) = quad_total
                    .iter_mut()
                    .find(|(qi, qj, _)| *qi == i && *qj == j)
                {
                    entry.2 += c;
                } else {
                    quad_total.push((i, j, c));
                }
            }
            linear_total = linear_total.add(&linear);
        }
        quad_total.retain(|(_, _, c)| !c.is_zero());
        self.constraints.push(GingerConstraint {
            quad: quad_total,
            linear: linear_total.sub(&LinComb::var(v)),
        });
        self.steps.push(SolveStep::SumOfProducts {
            target: v,
            pairs: pairs.to_vec(),
        });
        LinComb::var(v)
    }

    /// Asserts `a ≠ 0` with the paper's single-constraint encoding
    /// `{0 = a·M − 1}` (§2.2).
    pub fn assert_nonzero(&mut self, a: &LinComb<F>) {
        let m = self.aux();
        self.steps.push(SolveStep::InverseOrZero {
            target: m,
            of: a.clone(),
        });
        self.enforce_product(a, &LinComb::var(m), &LinComb::constant(F::ONE));
    }

    /// Computes the 0/1 flag `a ≠ 0` (two constraints, two auxiliaries).
    pub fn is_nonzero(&mut self, a: &LinComb<F>) -> LinComb<F> {
        let m = self.aux();
        let r = self.aux();
        self.steps.push(SolveStep::InverseOrZero {
            target: m,
            of: a.clone(),
        });
        self.steps.push(SolveStep::NonZeroFlag {
            target: r,
            of: a.clone(),
        });
        let r_lc = LinComb::var(r);
        // a·m = r and a·(1 − r) = 0.
        self.enforce_product(a, &LinComb::var(m), &r_lc);
        let one_minus_r = LinComb::constant(F::ONE).sub(&r_lc);
        self.enforce_product(a, &one_minus_r, &LinComb::zero());
        r_lc
    }

    /// Computes the 0/1 flag `a == b`.
    pub fn is_eq(&mut self, a: &LinComb<F>, b: &LinComb<F>) -> LinComb<F> {
        let neq = self.is_nonzero(&a.sub(b));
        LinComb::constant(F::ONE).sub(&neq)
    }

    /// Decomposes `lc` into `width` little-endian bits, each constrained
    /// boolean, with a recomposition constraint — `width + 1` constraints
    /// total (the `O(log |F|)` pseudoconstraint expansion of §2.2).
    pub fn bit_decompose(&mut self, lc: &LinComb<F>, width: usize) -> Vec<LinComb<F>> {
        assert!(
            (width as u32) < F::NUM_BITS,
            "bit width must fit below the field size"
        );
        let bits: Vec<VarId> = (0..width).map(|_| self.aux()).collect();
        self.steps.push(SolveStep::Bits {
            targets: bits.clone(),
            of: lc.clone(),
        });
        let mut recomposed = LinComb::zero();
        let mut pow = F::ONE;
        for b in &bits {
            let b_lc = LinComb::var(*b);
            // b·(b − 1) = 0.
            let b_minus_one = b_lc.add_constant(-F::ONE);
            self.enforce_product(&b_lc, &b_minus_one, &LinComb::zero());
            recomposed = recomposed.add(&b_lc.scale(pow));
            pow = pow.double();
        }
        self.enforce_eq(&recomposed, lc);
        bits.into_iter().map(LinComb::var).collect()
    }

    /// Computes the 0/1 flag `a < b`, where `b − a` is guaranteed by the
    /// caller to lie in `(−2^width, 2^width)`.
    ///
    /// Encoding: `s = (b − a − 1) + 2^width ∈ [0, 2^(width+1))`; then
    /// `a < b ⟺ bit width of s is set`. Costs `width + 2` constraints.
    pub fn less_than(&mut self, a: &LinComb<F>, b: &LinComb<F>, width: usize) -> LinComb<F> {
        let two_w = F::from_u64(2).pow(width as u64);
        let s = b.sub(a).add_constant(two_w - F::ONE);
        let bits = self.bit_decompose(&s, width + 1);
        bits[width].clone()
    }

    /// Computes the 0/1 flag `a <= b` under the same range contract as
    /// [`Builder::less_than`].
    pub fn less_eq(&mut self, a: &LinComb<F>, b: &LinComb<F>, width: usize) -> LinComb<F> {
        let lt = self.less_than(b, a, width);
        LinComb::constant(F::ONE).sub(&lt)
    }

    /// Multiplexer: `cond ? then : otherwise` for a 0/1 `cond`
    /// (if-then-else, §2.2).
    pub fn mux(
        &mut self,
        cond: &LinComb<F>,
        then: &LinComb<F>,
        otherwise: &LinComb<F>,
    ) -> LinComb<F> {
        let delta = self.mul(cond, &then.sub(otherwise));
        otherwise.add(&delta)
    }

    /// Logical AND of two 0/1 flags.
    pub fn and(&mut self, a: &LinComb<F>, b: &LinComb<F>) -> LinComb<F> {
        self.mul(a, b)
    }

    /// Logical OR of two 0/1 flags: `a + b − a·b`.
    pub fn or(&mut self, a: &LinComb<F>, b: &LinComb<F>) -> LinComb<F> {
        let ab = self.mul(a, b);
        a.add(b).sub(&ab)
    }

    /// Logical NOT of a 0/1 flag.
    pub fn not(&self, a: &LinComb<F>) -> LinComb<F> {
        LinComb::constant(F::ONE).sub(a)
    }

    /// The smaller of `a` and `b` under the [`Builder::less_than`] range
    /// contract.
    pub fn min(&mut self, a: &LinComb<F>, b: &LinComb<F>, width: usize) -> LinComb<F> {
        let a_lt_b = self.less_than(a, b, width);
        self.mux(&a_lt_b, a, b)
    }

    /// Data-dependent array read `values[index]` via a selector sum
    /// `Σⱼ (index == j)·values[j]` — the "natural translation" of
    /// indirect memory access that §5.4 calls out: it costs Θ(n)
    /// equality gadgets *per access*, which is why the ZSL compiler
    /// rejects dynamic indices unless explicitly enabled.
    ///
    /// The result is the selected element when `0 ≤ index < n`, and 0
    /// otherwise (no selector matches).
    pub fn select(&mut self, values: &[LinComb<F>], index: &LinComb<F>) -> LinComb<F> {
        let mut acc = LinComb::zero();
        for (j, v) in values.iter().enumerate() {
            let is_j = self.is_eq(index, &LinComb::constant(F::from_u64(j as u64)));
            let term = self.mul(&is_j, v);
            acc = acc.add(&term);
        }
        acc
    }

    /// Exact field division `num/den`, constraining `den·q = num`.
    pub fn div(&mut self, num: &LinComb<F>, den: &LinComb<F>) -> LinComb<F> {
        let q = self.aux();
        self.steps.push(SolveStep::Divide {
            target: q,
            num: num.clone(),
            den: den.clone(),
        });
        self.enforce_product(den, &LinComb::var(q), num);
        LinComb::var(q)
    }

    /// Finishes the build, returning the constraint system and solver.
    pub fn finish(self) -> (GingerSystem<F>, WitnessSolver<F>) {
        let num_vars = self.vars.len();
        let sys = GingerSystem {
            vars: self.vars,
            constraints: self.constraints,
        };
        let solver = WitnessSolver {
            num_vars,
            inputs: self.inputs,
            outputs: self.outputs,
            steps: self.steps,
        };
        (sys, solver)
    }

    /// Current constraint count.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Current variable count.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }
}

/// Executes the recorded solver steps to produce a satisfying assignment
/// (the prover's step Á in Fig. 1).
#[derive(Clone, Debug)]
pub struct WitnessSolver<F> {
    num_vars: usize,
    inputs: Vec<VarId>,
    outputs: Vec<VarId>,
    steps: Vec<SolveStep<F>>,
}

impl<F: PrimeField> WitnessSolver<F> {
    /// Number of declared inputs.
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// The output variables, in binding order.
    pub fn outputs(&self) -> &[VarId] {
        &self.outputs
    }

    /// The input variables, in declaration order.
    pub fn inputs(&self) -> &[VarId] {
        &self.inputs
    }

    /// Computes the full assignment from the given input values.
    pub fn solve(&self, inputs: &[F]) -> Result<Assignment<F>, SolveError> {
        if inputs.len() != self.inputs.len() {
            return Err(SolveError::InputCount {
                expected: self.inputs.len(),
                got: inputs.len(),
            });
        }
        let mut asg = Assignment::zeroed(self.num_vars);
        for (v, x) in self.inputs.iter().zip(inputs.iter()) {
            asg.set(*v, *x);
        }
        for (idx, step) in self.steps.iter().enumerate() {
            match step {
                SolveStep::AssignLin { target, lc } => {
                    let v = lc.eval(&asg);
                    asg.set(*target, v);
                }
                SolveStep::Product { target, a, b } => {
                    let v = a.eval(&asg) * b.eval(&asg);
                    asg.set(*target, v);
                }
                SolveStep::SumOfProducts { target, pairs } => {
                    let v: F = pairs
                        .iter()
                        .map(|(a, b)| a.eval(&asg) * b.eval(&asg))
                        .sum();
                    asg.set(*target, v);
                }
                SolveStep::InverseOrZero { target, of } => {
                    let v = of.eval(&asg).inverse().unwrap_or(F::ZERO);
                    asg.set(*target, v);
                }
                SolveStep::NonZeroFlag { target, of } => {
                    let v = if of.eval(&asg).is_zero() {
                        F::ZERO
                    } else {
                        F::ONE
                    };
                    asg.set(*target, v);
                }
                SolveStep::Bits { targets, of } => {
                    let words = of.eval(&asg).to_canonical_words();
                    let width = targets.len();
                    // Verify the value fits in `width` bits.
                    for (wi, w) in words.iter().enumerate() {
                        for bit in 0..64 {
                            let pos = wi * 64 + bit;
                            if pos >= width && (w >> bit) & 1 == 1 {
                                return Err(SolveError::RangeOverflow { step: idx, width });
                            }
                        }
                    }
                    for (i, t) in targets.iter().enumerate() {
                        let w = words.get(i / 64).copied().unwrap_or(0);
                        let bit = (w >> (i % 64)) & 1;
                        asg.set(*t, F::from_u64(bit));
                    }
                }
                SolveStep::Divide { target, num, den } => {
                    let d = den.eval(&asg);
                    let inv = d
                        .inverse()
                        .ok_or(SolveError::DivisionByZero { step: idx })?;
                    asg.set(*target, num.eval(&asg) * inv);
                }
            }
        }
        Ok(asg)
    }

    /// Solves and extracts just the output values.
    pub fn run(&self, inputs: &[F]) -> Result<Vec<F>, SolveError> {
        let asg = self.solve(inputs)?;
        Ok(asg.extract(&self.outputs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zaatar_field::{Field, F61};

    fn f(x: i64) -> F61 {
        F61::from_i64(x)
    }

    /// Helper: build, solve, assert satisfied, return assignment.
    fn solve_ok(builder: Builder<F61>, sys_inputs: &[F61]) -> (GingerSystem<F61>, Assignment<F61>, Vec<VarId>) {
        let (sys, solver) = builder.finish();
        let asg = solver.solve(sys_inputs).expect("solvable");
        assert!(
            sys.is_satisfied(&asg),
            "violated constraint {:?}",
            sys.first_violation(&asg)
        );
        let outs = solver.outputs().to_vec();
        (sys, asg, outs)
    }

    #[test]
    fn decrement_by_three() {
        let mut b = Builder::<F61>::new();
        let x = b.alloc_input();
        b.bind_output(&x.add_constant(f(-3)));
        let (_, asg, outs) = solve_ok(b, &[f(10)]);
        assert_eq!(asg.get(outs[0]), f(7));
    }

    #[test]
    fn multiplication_gadget() {
        let mut b = Builder::<F61>::new();
        let x = b.alloc_input();
        let y = b.alloc_input();
        let p = b.mul(&x, &y);
        b.bind_output(&p);
        let (_, asg, outs) = solve_ok(b, &[f(6), f(7)]);
        assert_eq!(asg.get(outs[0]), f(42));
    }

    #[test]
    fn constant_multiplication_is_free() {
        let mut b = Builder::<F61>::new();
        let x = b.alloc_input();
        let five = LinComb::constant(f(5));
        let p = b.mul(&x, &five);
        assert_eq!(b.num_constraints(), 0, "constant mul adds no constraint");
        b.bind_output(&p);
        let (_, asg, outs) = solve_ok(b, &[f(8)]);
        assert_eq!(asg.get(outs[0]), f(40));
    }

    #[test]
    fn product_of_lincombs_expands() {
        // (x + 2)(y − 3) = xy − 3x + 2y − 6, one quad term.
        let mut b = Builder::<F61>::new();
        let x = b.alloc_input();
        let y = b.alloc_input();
        let p = b.mul(&x.add_constant(f(2)), &y.add_constant(f(-3)));
        b.bind_output(&p);
        let (sys, asg, outs) = solve_ok(b, &[f(10), f(5)]);
        assert_eq!(asg.get(outs[0]), f(24));
        assert_eq!(sys.constraints[0].quad.len(), 1);
    }

    #[test]
    fn sum_of_products_single_constraint() {
        // Squared distance: (a−c)² + (b−d)², one constraint, 3 distinct
        // quadratic monomials per squared difference.
        let mut b = Builder::<F61>::new();
        let ins = b.alloc_inputs(4);
        let d0 = ins[0].sub(&ins[2]);
        let d1 = ins[1].sub(&ins[3]);
        let pairs = vec![(d0.clone(), d0), (d1.clone(), d1)];
        let dist = b.sum_of_products(&pairs);
        assert_eq!(b.num_constraints(), 1);
        b.bind_output(&dist);
        let (_, asg, outs) = solve_ok(b, &[f(5), f(1), f(2), f(5)]);
        assert_eq!(asg.get(outs[0]), f(9 + 16));
    }

    #[test]
    fn is_nonzero_flag() {
        for (input, expect) in [(0i64, 0i64), (5, 1), (-3, 1)] {
            let mut b = Builder::<F61>::new();
            let x = b.alloc_input();
            let flag = b.is_nonzero(&x);
            b.bind_output(&flag);
            let (_, asg, outs) = solve_ok(b, &[f(input)]);
            assert_eq!(asg.get(outs[0]), f(expect), "input={input}");
        }
    }

    #[test]
    fn is_nonzero_rejects_cheating_flag() {
        let mut b = Builder::<F61>::new();
        let x = b.alloc_input();
        let flag = b.is_nonzero(&x);
        b.bind_output(&flag);
        let (sys, solver) = b.finish();
        let mut asg = solver.solve(&[f(7)]).unwrap();
        // Flip the flag variable (aux var r): find it via the output
        // binding and overwrite.
        let out = solver.outputs()[0];
        asg.set(out, F61::ZERO);
        // The output equality constraint now fails.
        assert!(!sys.is_satisfied(&asg));
    }

    #[test]
    fn assert_nonzero_single_constraint() {
        let mut b = Builder::<F61>::new();
        let x = b.alloc_input();
        b.assert_nonzero(&x);
        assert_eq!(b.num_constraints(), 1);
        let (sys, solver) = b.finish();
        let good = solver.solve(&[f(3)]).unwrap();
        assert!(sys.is_satisfied(&good));
        let bad = solver.solve(&[f(0)]).unwrap();
        assert!(!sys.is_satisfied(&bad), "zero input cannot satisfy a·m=1");
    }

    #[test]
    fn is_eq_flag() {
        for (a, b_, expect) in [(4i64, 4i64, 1i64), (4, 5, 0)] {
            let mut b = Builder::<F61>::new();
            let x = b.alloc_input();
            let y = b.alloc_input();
            let e = b.is_eq(&x, &y);
            b.bind_output(&e);
            let (_, asg, outs) = solve_ok(b, &[f(a), f(b_)]);
            assert_eq!(asg.get(outs[0]), f(expect));
        }
    }

    #[test]
    fn bit_decomposition() {
        let mut b = Builder::<F61>::new();
        let x = b.alloc_input();
        let bits = b.bit_decompose(&x, 6);
        for bit in &bits {
            b.bind_output(bit);
        }
        let (_, asg, outs) = solve_ok(b, &[f(0b101101)]);
        let got: Vec<u64> = outs
            .iter()
            .map(|o| asg.get(*o).to_canonical_words()[0])
            .collect();
        assert_eq!(got, vec![1, 0, 1, 1, 0, 1]);
    }

    #[test]
    fn bit_decomposition_overflow_errors() {
        let mut b = Builder::<F61>::new();
        let x = b.alloc_input();
        b.bit_decompose(&x, 4);
        let (_, solver) = b.finish();
        let err = solver.solve(&[f(16)]).unwrap_err();
        assert!(matches!(err, SolveError::RangeOverflow { width: 4, .. }));
        assert!(solver.solve(&[f(15)]).is_ok());
    }

    #[test]
    fn less_than_all_cases() {
        for (a, b_, expect) in [
            (3i64, 7i64, 1i64),
            (7, 3, 0),
            (5, 5, 0),
            (-4, 2, 1),
            (2, -4, 0),
            (-6, -5, 1),
        ] {
            let mut b = Builder::<F61>::new();
            let x = b.alloc_input();
            let y = b.alloc_input();
            let lt = b.less_than(&x, &y, 8);
            b.bind_output(&lt);
            let (_, asg, outs) = solve_ok(b, &[f(a), f(b_)]);
            assert_eq!(asg.get(outs[0]), f(expect), "a={a} b={b_}");
        }
    }

    #[test]
    fn less_eq_boundary() {
        for (a, b_, expect) in [(5i64, 5i64, 1i64), (5, 4, 0), (4, 5, 1)] {
            let mut b = Builder::<F61>::new();
            let x = b.alloc_input();
            let y = b.alloc_input();
            let le = b.less_eq(&x, &y, 8);
            b.bind_output(&le);
            let (_, asg, outs) = solve_ok(b, &[f(a), f(b_)]);
            assert_eq!(asg.get(outs[0]), f(expect), "a={a} b={b_}");
        }
    }

    #[test]
    fn comparison_cost_is_logarithmic() {
        // §2.2: order comparisons expand to O(log |F|) constraints.
        let mut b = Builder::<F61>::new();
        let x = b.alloc_input();
        let y = b.alloc_input();
        let before = b.num_constraints();
        b.less_than(&x, &y, 32);
        let added = b.num_constraints() - before;
        assert_eq!(added, 32 + 2, "w+1 bit constraints + recomposition");
    }

    #[test]
    fn mux_selects() {
        for (c, expect) in [(1i64, 10i64), (0, 20)] {
            let mut b = Builder::<F61>::new();
            let cond = b.alloc_input();
            let t = LinComb::constant(f(10));
            let e = LinComb::constant(f(20));
            let m = b.mux(&cond, &t, &e);
            b.bind_output(&m);
            let (_, asg, outs) = solve_ok(b, &[f(c)]);
            assert_eq!(asg.get(outs[0]), f(expect));
        }
    }

    #[test]
    fn logical_connectives() {
        for (a, b_, and_e, or_e) in [(0i64, 0i64, 0i64, 0i64), (0, 1, 0, 1), (1, 0, 0, 1), (1, 1, 1, 1)]
        {
            let mut b = Builder::<F61>::new();
            let x = b.alloc_input();
            let y = b.alloc_input();
            let an = b.and(&x, &y);
            let orr = b.or(&x, &y);
            let no = b.not(&x);
            b.bind_output(&an);
            b.bind_output(&orr);
            b.bind_output(&no);
            let (_, asg, outs) = solve_ok(b, &[f(a), f(b_)]);
            assert_eq!(asg.get(outs[0]), f(and_e), "and {a} {b_}");
            assert_eq!(asg.get(outs[1]), f(or_e), "or {a} {b_}");
            assert_eq!(asg.get(outs[2]), f(1 - a), "not {a}");
        }
    }

    #[test]
    fn min_gadget() {
        for (a, b_, expect) in [(3i64, 9i64, 3i64), (9, 3, 3), (-2, 5, -2), (4, 4, 4)] {
            let mut b = Builder::<F61>::new();
            let x = b.alloc_input();
            let y = b.alloc_input();
            let m = b.min(&x, &y, 8);
            b.bind_output(&m);
            let (_, asg, outs) = solve_ok(b, &[f(a), f(b_)]);
            assert_eq!(asg.get(outs[0]), f(expect), "min({a},{b_})");
        }
    }

    #[test]
    fn division_gadget() {
        let mut b = Builder::<F61>::new();
        let x = b.alloc_input();
        let y = b.alloc_input();
        let q = b.div(&x, &y);
        b.bind_output(&q);
        let (_, asg, outs) = solve_ok(b, &[f(84), f(2)]);
        assert_eq!(asg.get(outs[0]), f(42));
    }

    #[test]
    fn division_by_zero_errors() {
        let mut b = Builder::<F61>::new();
        let x = b.alloc_input();
        let y = b.alloc_input();
        let q = b.div(&x, &y);
        b.bind_output(&q);
        let (_, solver) = b.finish();
        assert!(matches!(
            solver.solve(&[f(1), f(0)]),
            Err(SolveError::DivisionByZero { .. })
        ));
    }

    #[test]
    fn input_count_mismatch() {
        let mut b = Builder::<F61>::new();
        b.alloc_inputs(3);
        let (_, solver) = b.finish();
        assert_eq!(
            solver.solve(&[f(1)]),
            Err(SolveError::InputCount {
                expected: 3,
                got: 1
            })
        );
    }

    #[test]
    fn select_gadget_reads_dynamically() {
        for (idx, expect) in [(0i64, 10i64), (2, 30), (3, 40), (9, 0)] {
            let mut b = Builder::<F61>::new();
            let i = b.alloc_input();
            let values: Vec<LinComb<F61>> =
                [10, 20, 30, 40].iter().map(|&v| LinComb::constant(f(v))).collect();
            let sel = b.select(&values, &i);
            b.bind_output(&sel);
            let (_, asg, outs) = solve_ok(b, &[f(idx)]);
            assert_eq!(asg.get(outs[0]), f(expect), "idx={idx}");
        }
    }

    #[test]
    fn select_cost_is_linear_in_array_size() {
        // §5.4's point: each dynamic access costs Θ(n) constraints.
        let count = |n: usize| {
            let mut b = Builder::<F61>::new();
            let i = b.alloc_input();
            let values: Vec<LinComb<F61>> =
                (0..n).map(|v| LinComb::constant(f(v as i64))).collect();
            b.select(&values, &i);
            b.num_constraints()
        };
        let c8 = count(8);
        let c16 = count(16);
        assert!(c16 >= 2 * c8 - 2, "c8={c8} c16={c16}");
    }

    #[test]
    fn run_returns_outputs_in_order() {
        let mut b = Builder::<F61>::new();
        let x = b.alloc_input();
        b.bind_output(&x.scale(f(2)));
        b.bind_output(&x.scale(f(3)));
        let (_, solver) = b.finish();
        assert_eq!(solver.run(&[f(5)]).unwrap(), vec![f(10), f(15)]);
    }
}
