//! The constraint compiler: from high-level programs to the constraint
//! formalisms of Ginger and Zaatar.
//!
//! The pipeline mirrors the paper's (§2.1, §4, and \[16\]):
//!
//! 1. a program in **ZSL** (a small imperative language standing in for
//!    SFDL; see [`lang`]) is parsed and *flattened* — bounded loops are
//!    unrolled, both branches of conditionals are evaluated and merged
//!    with multiplexers — into a straight line of assignments;
//! 2. each assignment becomes a constraint or *pseudoconstraint* via the
//!    gadget library in [`builder`] (`!=` costs two constraints with an
//!    auxiliary inverse variable; order comparisons expand to `O(log |F|)`
//!    constraints via bit decomposition, exactly as §2.2 describes);
//! 3. the resulting **Ginger constraints** (general degree-2 equations,
//!    [`ir::GingerSystem`]) are mechanically transformed to **quadratic
//!    form** (`p_A · p_B = p_C`, [`ir::QuadSystem`]) by replacing each
//!    distinct degree-2 term with a new variable ([`transform`], §4) —
//!    this is what introduces the `K₂` extra variables and constraints
//!    that Fig. 3 accounts for.
//!
//! Witness generation (step Á of Fig. 1: the prover "solves the
//! constraints") is handled by the same builder: every gadget records a
//! deterministic solver step, so [`builder::WitnessSolver::solve`] executes the
//! computation and fills in every auxiliary variable.

pub mod builder;
pub mod gadgets;
pub mod ir;
pub mod lang;
pub mod numeric;
pub mod opt;
pub mod serialize;
pub mod stats;
pub mod transform;

pub use builder::{Builder, SolveError};
pub use gadgets::U32Word;
pub use opt::{optimize, OptReport, Optimized};
pub use ir::{
    Assignment, GingerConstraint, GingerSystem, Kind, LinComb, QuadConstraint, QuadSystem, VarId,
};
pub use lang::compile as compile_zsl;
pub use serialize::{ginger_from_zcs, ginger_to_zcs, quad_from_zcs, quad_to_zcs};
pub use stats::{ginger_stats, quad_stats, EncodingStats};
pub use transform::{ginger_to_quad, ginger_to_quad_optimized, linearize_io, IoLinearize, QuadTransform};
