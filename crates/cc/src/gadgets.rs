//! Bit-sliced u32 gadgets: bitwise logic, shifts/rotates, modular
//! addition, comparison, and an ARX hash round built from them.
//!
//! The paper's compiler stops at arithmetic, comparisons, and logical
//! connectives (§2.2); real workloads also need bit operations — hashes,
//! checksums, bit-packed state. Each gadget here emits its constraints
//! through the [`Builder`], so it arrives with the same witness-solver
//! hook as every §2.2 construct: `lang::compile` and direct builder
//! users get a [`crate::ir::GingerSystem`] fragment plus the solver
//! steps that fill in its auxiliary variables.
//!
//! Representation: a [`U32Word`] is 32 little-endian bits, each a
//! [`LinComb`] known (by construction or by booleanity constraints) to
//! evaluate to 0 or 1. With boolean bits the bitwise connectives are
//! degree-2 polynomials:
//!
//! * `a AND b = a·b` — one product constraint per bit;
//! * `a XOR b = a + b − 2ab` — one product per bit;
//! * `a OR b  = a + b − ab` — one product per bit;
//! * `NOT a   = 1 − a` — free;
//! * shifts and rotates are free bit-index permutations;
//! * `a + b mod 2³²` re-composes both words into one field element and
//!   decomposes the 33-bit sum, dropping the carry;
//! * `MAJ(a,b,c) = ab + c·(a XOR b)` — two products per bit, sharing
//!   the `ab` product with `a AND b` / `a XOR b` of the same operands
//!   (the redundancy [`crate::opt`]'s CSE pass collects in hash rounds).

use zaatar_field::PrimeField;

use crate::builder::Builder;
use crate::ir::LinComb;

/// A 32-bit word as little-endian boolean bit combinations.
#[derive(Clone, Debug)]
pub struct U32Word<F> {
    bits: Vec<LinComb<F>>,
}

impl<F: PrimeField> U32Word<F> {
    fn from_bits(bits: Vec<LinComb<F>>) -> Self {
        debug_assert_eq!(bits.len(), 32);
        U32Word { bits }
    }

    /// A compile-time constant word (free: no constraints).
    pub fn constant(x: u32) -> Self {
        U32Word {
            bits: (0..32)
                .map(|i| LinComb::constant(F::from_u64(u64::from((x >> i) & 1))))
                .collect(),
        }
    }

    /// The little-endian bits.
    pub fn bits(&self) -> &[LinComb<F>] {
        &self.bits
    }

    /// Bit `i` (0 = least significant).
    pub fn bit(&self, i: usize) -> &LinComb<F> {
        &self.bits[i]
    }

    /// Recomposes the word into a field element `Σ 2ⁱ·bᵢ` (free).
    pub fn to_lc(&self) -> LinComb<F> {
        let mut out = LinComb::zero();
        let mut pow = F::ONE;
        for b in &self.bits {
            out = out.add(&b.scale(pow));
            pow = pow.double();
        }
        out
    }

    /// Rotate left by `k` bits (free permutation).
    pub fn rotl(&self, k: u32) -> Self {
        let k = (k % 32) as usize;
        // Output bit i+k (mod 32) is input bit i.
        let bits = (0..32)
            .map(|i| self.bits[(i + 32 - k) % 32].clone())
            .collect();
        U32Word::from_bits(bits)
    }

    /// Rotate right by `k` bits (free permutation).
    pub fn rotr(&self, k: u32) -> Self {
        self.rotl(32 - (k % 32))
    }

    /// Logical shift left by `k` bits, zero-filling (free).
    pub fn shl(&self, k: u32) -> Self {
        let k = (k % 32) as usize;
        let bits = (0..32)
            .map(|i| {
                if i < k {
                    LinComb::zero()
                } else {
                    self.bits[i - k].clone()
                }
            })
            .collect();
        U32Word::from_bits(bits)
    }

    /// Logical shift right by `k` bits, zero-filling (free).
    pub fn shr(&self, k: u32) -> Self {
        let k = (k % 32) as usize;
        let bits = (0..32)
            .map(|i| {
                self.bits
                    .get(i + k)
                    .cloned()
                    .unwrap_or_else(LinComb::zero)
            })
            .collect();
        U32Word::from_bits(bits)
    }

    /// Bitwise NOT (free: each bit becomes `1 − b`).
    pub fn not(&self) -> Self {
        let bits = self
            .bits
            .iter()
            .map(|b| LinComb::constant(F::ONE).sub(b))
            .collect();
        U32Word::from_bits(bits)
    }
}

impl<F: PrimeField> Builder<F> {
    /// Decomposes a field value known to lie in `[0, 2³²)` into a
    /// [`U32Word`], constraining every bit boolean plus one
    /// recomposition constraint (33 constraints). The solver fails with
    /// a range overflow if the value does not fit.
    pub fn u32_witness(&mut self, lc: &LinComb<F>) -> U32Word<F> {
        U32Word::from_bits(self.bit_decompose(lc, 32))
    }

    /// Declares a u32-ranged input: one input variable plus its
    /// decomposition.
    pub fn u32_input(&mut self) -> U32Word<F> {
        let x = self.alloc_input();
        self.u32_witness(&x)
    }

    /// Bitwise AND: one product constraint per bit.
    pub fn u32_and(&mut self, a: &U32Word<F>, b: &U32Word<F>) -> U32Word<F> {
        let bits = (0..32).map(|i| self.mul(a.bit(i), b.bit(i))).collect();
        U32Word::from_bits(bits)
    }

    /// Bitwise XOR (`a + b − 2ab`): one product constraint per bit.
    pub fn u32_xor(&mut self, a: &U32Word<F>, b: &U32Word<F>) -> U32Word<F> {
        let two = F::from_u64(2);
        let bits = (0..32)
            .map(|i| {
                let ab = self.mul(a.bit(i), b.bit(i));
                a.bit(i).add(b.bit(i)).sub(&ab.scale(two))
            })
            .collect();
        U32Word::from_bits(bits)
    }

    /// Bitwise OR (`a + b − ab`): one product constraint per bit.
    pub fn u32_or(&mut self, a: &U32Word<F>, b: &U32Word<F>) -> U32Word<F> {
        let bits = (0..32)
            .map(|i| {
                let ab = self.mul(a.bit(i), b.bit(i));
                a.bit(i).add(b.bit(i)).sub(&ab)
            })
            .collect();
        U32Word::from_bits(bits)
    }

    /// Addition mod 2³²: recomposes both words, decomposes the 33-bit
    /// sum, and drops the carry bit (34 constraints).
    pub fn u32_add(&mut self, a: &U32Word<F>, b: &U32Word<F>) -> U32Word<F> {
        let sum = a.to_lc().add(&b.to_lc());
        let mut bits = self.bit_decompose(&sum, 33);
        bits.truncate(32);
        U32Word::from_bits(bits)
    }

    /// Bitwise majority `MAJ(a,b,c) = ab + c·(a XOR b)`: two products
    /// per bit. The `ab` product is emitted with the same shape as the
    /// one inside [`Builder::u32_and`] / [`Builder::u32_xor`] over the
    /// same operands, which is what makes hash rounds computing several
    /// of these mixes redundant — grist for [`crate::opt`]'s CSE pass.
    pub fn u32_maj(&mut self, a: &U32Word<F>, b: &U32Word<F>, c: &U32Word<F>) -> U32Word<F> {
        let two = F::from_u64(2);
        let bits = (0..32)
            .map(|i| {
                let ab = self.mul(a.bit(i), b.bit(i));
                let x = a.bit(i).add(b.bit(i)).sub(&ab.scale(two));
                let cx = self.mul(c.bit(i), &x);
                ab.add(&cx)
            })
            .collect();
        U32Word::from_bits(bits)
    }

    /// The 0/1 flag `a < b` over the u32 range (comparison gadget; 34
    /// constraints via [`Builder::less_than`] at width 32).
    pub fn u32_lt(&mut self, a: &U32Word<F>, b: &U32Word<F>) -> LinComb<F> {
        self.less_than(&a.to_lc(), &b.to_lc(), 32)
    }

    /// One ChaCha-style ARX quarter round (rotations 16/12/8/7): the toy
    /// hash round the workload zoo chains. See [`arx_quarter_round_ref`]
    /// for the native-u32 reference semantics.
    pub fn arx_quarter_round(
        &mut self,
        a: &U32Word<F>,
        b: &U32Word<F>,
        c: &U32Word<F>,
        d: &U32Word<F>,
    ) -> (U32Word<F>, U32Word<F>, U32Word<F>, U32Word<F>) {
        let a = self.u32_add(a, b);
        let d = self.u32_xor(d, &a).rotl(16);
        let c = self.u32_add(c, &d);
        let b = self.u32_xor(b, &c).rotl(12);
        let a = self.u32_add(&a, &b);
        let d = self.u32_xor(&d, &a).rotl(8);
        let c = self.u32_add(&c, &d);
        let b = self.u32_xor(&b, &c).rotl(7);
        (a, b, c, d)
    }
}

/// Native-u32 reference for [`Builder::arx_quarter_round`].
pub fn arx_quarter_round_ref(a: u32, b: u32, c: u32, d: u32) -> (u32, u32, u32, u32) {
    let a = a.wrapping_add(b);
    let d = (d ^ a).rotate_left(16);
    let c = c.wrapping_add(d);
    let b = (b ^ c).rotate_left(12);
    let a = a.wrapping_add(b);
    let d = (d ^ a).rotate_left(8);
    let c = c.wrapping_add(d);
    let b = (b ^ c).rotate_left(7);
    (a, b, c, d)
}

/// Native-u32 reference for [`Builder::u32_maj`].
pub fn maj_ref(a: u32, b: u32, c: u32) -> u32 {
    (a & b) | (c & (a ^ b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use zaatar_field::{Field, F61};

    /// Builds a two-u32-input circuit with `f`, solves it on `(x, y)`,
    /// and returns the single output as a u64 word.
    fn eval2(f: impl Fn(&mut Builder<F61>, &U32Word<F61>, &U32Word<F61>) -> LinComb<F61>, x: u32, y: u32) -> u64 {
        let mut b = Builder::<F61>::new();
        let a = b.u32_input();
        let bb = b.u32_input();
        let out = f(&mut b, &a, &bb);
        b.bind_output(&out);
        let (sys, solver) = b.finish();
        let asg = solver
            .solve(&[F61::from_u64(u64::from(x)), F61::from_u64(u64::from(y))])
            .expect("solvable");
        assert!(
            sys.is_satisfied(&asg),
            "violated {:?}",
            sys.first_violation(&asg)
        );
        asg.get(solver.outputs()[0]).to_canonical_words()[0]
    }

    #[test]
    fn bitwise_connectives_match_native() {
        for (x, y) in [(0u32, 0u32), (0xdead_beef, 0x0123_4567), (u32::MAX, 1)] {
            assert_eq!(eval2(|b, a, c| { let w = b.u32_and(a, c); w.to_lc() }, x, y), u64::from(x & y));
            assert_eq!(eval2(|b, a, c| { let w = b.u32_xor(a, c); w.to_lc() }, x, y), u64::from(x ^ y));
            assert_eq!(eval2(|b, a, c| { let w = b.u32_or(a, c); w.to_lc() }, x, y), u64::from(x | y));
            assert_eq!(eval2(|_, a, _| a.not().to_lc(), x, y), u64::from(!x));
        }
    }

    #[test]
    fn add_wraps_mod_2_32() {
        for (x, y) in [(1u32, 2u32), (u32::MAX, 1), (0x8000_0000, 0x8000_0000)] {
            assert_eq!(
                eval2(|b, a, c| { let w = b.u32_add(a, c); w.to_lc() }, x, y),
                u64::from(x.wrapping_add(y))
            );
        }
    }

    #[test]
    fn shifts_and_rotates_are_free() {
        let mut b = Builder::<F61>::new();
        let a = b.u32_input();
        let before = b.num_constraints();
        let _ = a.rotl(7);
        let _ = a.rotr(13);
        let _ = a.shl(3);
        let _ = a.shr(9);
        let _ = a.not();
        assert_eq!(b.num_constraints(), before, "permutations cost nothing");
        for k in [0u32, 1, 7, 16, 31] {
            let x = 0x9e37_79b9u32;
            assert_eq!(eval2(|_, a, _| a.rotl(k).to_lc(), x, 0), u64::from(x.rotate_left(k)));
            assert_eq!(eval2(|_, a, _| a.rotr(k).to_lc(), x, 0), u64::from(x.rotate_right(k)));
            assert_eq!(eval2(|_, a, _| a.shl(k).to_lc(), x, 0), u64::from(x << k));
            assert_eq!(eval2(|_, a, _| a.shr(k).to_lc(), x, 0), u64::from(x >> k));
        }
    }

    #[test]
    fn maj_matches_reference() {
        for (x, y, z) in [(0u32, 0u32, 0u32), (0xffff_0000, 0x00ff_ff00, 0x0f0f_0f0f)] {
            let mut b = Builder::<F61>::new();
            let a = b.u32_input();
            let bb = b.u32_input();
            let cc = b.u32_input();
            let m = b.u32_maj(&a, &bb, &cc);
            b.bind_output(&m.to_lc());
            let (sys, solver) = b.finish();
            let asg = solver
                .solve(&[
                    F61::from_u64(u64::from(x)),
                    F61::from_u64(u64::from(y)),
                    F61::from_u64(u64::from(z)),
                ])
                .unwrap();
            assert!(sys.is_satisfied(&asg));
            assert_eq!(
                asg.get(solver.outputs()[0]).to_canonical_words()[0],
                u64::from(maj_ref(x, y, z))
            );
        }
    }

    #[test]
    fn comparison_flag() {
        for (x, y, expect) in [(3u32, 7u32, 1u64), (7, 3, 0), (5, 5, 0), (u32::MAX, 0, 0)] {
            assert_eq!(eval2(|b, a, c| b.u32_lt(a, c), x, y), expect, "{x} < {y}");
        }
    }

    #[test]
    fn arx_round_matches_reference() {
        let (x, y, z, w) = (0x6170_7865u32, 0x3320_646eu32, 0x7962_2d32u32, 0x6b20_6574u32);
        let mut b = Builder::<F61>::new();
        let a = b.u32_input();
        let bb = b.u32_input();
        let cc = b.u32_input();
        let dd = b.u32_input();
        let (ra, rb, rc, rd) = b.arx_quarter_round(&a, &bb, &cc, &dd);
        for word in [&ra, &rb, &rc, &rd] {
            b.bind_output(&word.to_lc());
        }
        let (sys, solver) = b.finish();
        let ins: Vec<F61> = [x, y, z, w]
            .iter()
            .map(|&v| F61::from_u64(u64::from(v)))
            .collect();
        let asg = solver.solve(&ins).unwrap();
        assert!(
            sys.is_satisfied(&asg),
            "violated {:?}",
            sys.first_violation(&asg)
        );
        let got: Vec<u64> = solver
            .outputs()
            .iter()
            .map(|o| asg.get(*o).to_canonical_words()[0])
            .collect();
        let (ea, eb, ec, ed) = arx_quarter_round_ref(x, y, z, w);
        assert_eq!(got, vec![u64::from(ea), u64::from(eb), u64::from(ec), u64::from(ed)]);
    }

    #[test]
    fn witness_range_checks() {
        let mut b = Builder::<F61>::new();
        let x = b.alloc_input();
        b.u32_witness(&x);
        let (_, solver) = b.finish();
        assert!(solver.solve(&[F61::from_u64(u64::from(u32::MAX))]).is_ok());
        assert!(solver.solve(&[F61::from_u64(1 << 32)]).is_err());
    }
}
