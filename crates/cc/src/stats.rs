//! Encoding-size accounting: the quantities of Fig. 3 and Fig. 9.
//!
//! `|Z|` counts *unbound* variables only (inputs and outputs are bound by
//! `x` and `y`, §2.1); `K` is the number of additive terms across all
//! Ginger constraints; `K₂` is the number of **distinct** degree-2 terms.
//! From these, the proof-vector lengths follow:
//! `|u_ginger| = |Z| + |Z|²` and `|u_zaatar| = |Z_zaatar| + |C_zaatar|`.

use std::collections::HashSet;

use zaatar_field::Field;

use crate::ir::{GingerSystem, Kind, QuadSystem};

/// Size statistics for a compiled computation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EncodingStats {
    /// Input variable count `|x|`.
    pub num_inputs: usize,
    /// Output variable count `|y|`.
    pub num_outputs: usize,
    /// Unbound variable count `|Z|`.
    pub num_unbound: usize,
    /// Constraint count `|C|`.
    pub num_constraints: usize,
    /// Additive terms across all constraints (`K`, Ginger only).
    pub k_terms: usize,
    /// Distinct degree-2 terms (`K₂`, Ginger only).
    pub k2_distinct: usize,
}

impl EncodingStats {
    /// Ginger's proof-vector length `|Z| + |Z|²` (§3).
    pub fn ginger_proof_len(&self) -> u128 {
        let z = self.num_unbound as u128;
        z + z * z
    }

    /// Zaatar's proof-vector length `|Z| + |C|` (§3), valid when these
    /// stats describe a quadratic-form system.
    pub fn zaatar_proof_len(&self) -> u128 {
        self.num_unbound as u128 + self.num_constraints as u128
    }

    /// The crossover threshold `K₂* = (|Z|² − |Z|)/2` of §4: Zaatar's
    /// proof is shorter than Ginger's iff `K₂ < K₂*`.
    pub fn k2_star(&self) -> u128 {
        let z = self.num_unbound as u128;
        (z * z - z) / 2
    }

    /// The hybrid encoding choice of §4's footnote ("the degenerate
    /// cases are detectable, so the compiler could simply choose to use
    /// Ginger over Zaatar", citing the Allspice hybrid \[57\]): prefer
    /// Zaatar's QAP encoding unless the computation sits in the
    /// degenerate dense-degree-2 regime where Ginger's proof vector is
    /// no longer.
    pub fn prefer_zaatar(&self) -> bool {
        (self.k2_distinct as u128) < self.k2_star()
    }
}

/// Computes statistics for a Ginger (general degree-2) system.
pub fn ginger_stats<F: Field>(sys: &GingerSystem<F>) -> EncodingStats {
    let mut k = 0usize;
    let mut distinct: HashSet<(usize, usize)> = HashSet::new();
    for c in &sys.constraints {
        k += c.quad.len() + c.linear.num_terms();
        for (i, j, _) in &c.quad {
            distinct.insert((i.0, j.0));
        }
    }
    EncodingStats {
        num_inputs: sys.vars.count(Kind::Input),
        num_outputs: sys.vars.count(Kind::Output),
        num_unbound: sys.vars.count(Kind::Aux),
        num_constraints: sys.constraints.len(),
        k_terms: k,
        k2_distinct: distinct.len(),
    }
}

/// Computes statistics for a quadratic-form system (the `K` fields are
/// counted over the expanded `p_A·p_B − p_C` representation's additive
/// terms, primarily informational here).
pub fn quad_stats<F: Field>(sys: &QuadSystem<F>) -> EncodingStats {
    let mut k = 0usize;
    for c in &sys.constraints {
        k += c.a.num_terms() + c.b.num_terms() + c.c.num_terms();
    }
    EncodingStats {
        num_inputs: sys.vars.count(Kind::Input),
        num_outputs: sys.vars.count(Kind::Output),
        num_unbound: sys.vars.count(Kind::Aux),
        num_constraints: sys.constraints.len(),
        k_terms: k,
        k2_distinct: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Builder;
    use crate::transform::ginger_to_quad;
    use zaatar_field::F61;

    #[test]
    fn stats_track_fig3_relations() {
        // Build something with shared and distinct degree-2 terms.
        let mut b = Builder::<F61>::new();
        let xs = b.alloc_inputs(3);
        let p1 = b.mul(&xs[0], &xs[1]);
        let p2 = b.mul(&xs[1], &xs[2]);
        let s = b.sum_of_products(&[(xs[0].clone(), xs[0].clone()), (xs[2].clone(), xs[2].clone())]);
        let total = p1.add(&p2).add(&s);
        b.bind_output(&total);
        let (sys, _) = b.finish();
        let gs = ginger_stats(&sys);
        let t = ginger_to_quad(&sys);
        let zs = quad_stats(&t.system);
        // Fig. 3: |Z_zaatar| = |Z_ginger| + K₂ and |C_zaatar| = |C_ginger| + K₂.
        assert_eq!(zs.num_unbound, gs.num_unbound + gs.k2_distinct);
        assert_eq!(zs.num_constraints, gs.num_constraints + gs.k2_distinct);
        // Same bound variables.
        assert_eq!(zs.num_inputs, gs.num_inputs);
        assert_eq!(zs.num_outputs, gs.num_outputs);
    }

    #[test]
    fn proof_lengths() {
        let stats = EncodingStats {
            num_inputs: 2,
            num_outputs: 1,
            num_unbound: 10,
            num_constraints: 12,
            k_terms: 30,
            k2_distinct: 4,
        };
        assert_eq!(stats.ginger_proof_len(), 10 + 100);
        assert_eq!(stats.zaatar_proof_len(), 22);
        assert_eq!(stats.k2_star(), 45);
    }

    #[test]
    fn k_counts_additive_terms() {
        let mut b = Builder::<F61>::new();
        let xs = b.alloc_inputs(2);
        // One constraint: x0·x1 − v = 0 → 1 quad term + 1 linear term = 2.
        b.mul(&xs[0], &xs[1]);
        let (sys, _) = b.finish();
        let gs = ginger_stats(&sys);
        assert_eq!(gs.k_terms, 2);
        assert_eq!(gs.k2_distinct, 1);
    }
}
