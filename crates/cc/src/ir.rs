//! Constraint intermediate representation.
//!
//! Two constraint formalisms appear in the paper:
//!
//! * **Ginger constraints** (§2.2): arbitrary degree-2 equations over `F` —
//!   a sum of degree-2 terms plus a linear part, equal to zero.
//! * **Zaatar constraints / quadratic form** (§4): each constraint is
//!   `p_A(W) · p_B(W) = p_C(W)` for degree-1 polynomials `p_A, p_B, p_C`
//!   (what later literature calls R1CS). The QAP of App. A.1 is built
//!   from this form.
//!
//! Variables are globally indexed [`VarId`]s partitioned into inputs `X`,
//! outputs `Y`, and unbound variables `Z` (§2.1).

use core::fmt;

use zaatar_field::Field;

/// A variable index, global within one constraint system.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub usize);

/// The role of a variable in the system (§2.1's `X`, `Y`, `Z`).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Kind {
    /// Distinguished input variable (bound by the verifier's `x`).
    Input,
    /// Distinguished output variable (bound by the claimed `y`).
    Output,
    /// Unbound variable, part of the satisfying assignment `z`.
    Aux,
}

/// Registry of all variables in a system.
#[derive(Clone, Debug, Default)]
pub struct VarRegistry {
    kinds: Vec<Kind>,
}

impl VarRegistry {
    /// Allocates a new variable of the given kind.
    pub fn alloc(&mut self, kind: Kind) -> VarId {
        self.kinds.push(kind);
        VarId(self.kinds.len() - 1)
    }

    /// Total variable count.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// Returns `true` if no variables exist.
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// The kind of a variable.
    pub fn kind(&self, v: VarId) -> Kind {
        self.kinds[v.0]
    }

    /// Count of variables of a kind.
    pub fn count(&self, kind: Kind) -> usize {
        self.kinds.iter().filter(|k| **k == kind).count()
    }

    /// All variables of a kind, in allocation order.
    pub fn of_kind(&self, kind: Kind) -> Vec<VarId> {
        self.kinds
            .iter()
            .enumerate()
            .filter(|(_, k)| **k == kind)
            .map(|(i, _)| VarId(i))
            .collect()
    }
}

/// A degree-1 polynomial over the variables: `Σ cᵢ·Wᵢ + constant`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LinComb<F> {
    /// `(variable, coefficient)` pairs, sorted by variable, no zeros.
    terms: Vec<(VarId, F)>,
    constant: F,
}

impl<F: Field> Default for LinComb<F> {
    fn default() -> Self {
        Self::zero()
    }
}

impl<F: Field> LinComb<F> {
    /// The zero combination.
    pub fn zero() -> Self {
        LinComb {
            terms: Vec::new(),
            constant: F::ZERO,
        }
    }

    /// A constant.
    pub fn constant(c: F) -> Self {
        LinComb {
            terms: Vec::new(),
            constant: c,
        }
    }

    /// A single variable with coefficient one.
    pub fn var(v: VarId) -> Self {
        LinComb {
            terms: vec![(v, F::ONE)],
            constant: F::ZERO,
        }
    }

    /// `coeff · v`.
    pub fn scaled_var(v: VarId, coeff: F) -> Self {
        if coeff.is_zero() {
            Self::zero()
        } else {
            LinComb {
                terms: vec![(v, coeff)],
                constant: F::ZERO,
            }
        }
    }

    /// Builds a combination from arbitrary `(variable, coefficient)`
    /// pairs, restoring the invariants: terms sorted by variable,
    /// duplicates merged, zero coefficients dropped. Used by the
    /// optimizer when rewriting constraints.
    pub(crate) fn from_terms(mut terms: Vec<(VarId, F)>, constant: F) -> Self {
        terms.sort_by_key(|(v, _)| *v);
        let mut out: Vec<(VarId, F)> = Vec::with_capacity(terms.len());
        for (v, c) in terms {
            match out.last_mut() {
                Some((lv, lc)) if *lv == v => *lc += c,
                _ => out.push((v, c)),
            }
        }
        out.retain(|(_, c)| !c.is_zero());
        LinComb {
            terms: out,
            constant,
        }
    }

    /// The `(variable, coefficient)` terms.
    pub fn terms(&self) -> &[(VarId, F)] {
        &self.terms
    }

    /// The constant term.
    pub fn constant_term(&self) -> F {
        self.constant
    }

    /// True if the combination has no variable terms.
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }

    /// If this is exactly one variable with coefficient 1 and no constant,
    /// returns it.
    pub fn as_single_var(&self) -> Option<VarId> {
        if self.constant.is_zero() && self.terms.len() == 1 && self.terms[0].1 == F::ONE {
            Some(self.terms[0].0)
        } else {
            None
        }
    }

    /// Adds another combination.
    pub fn add(&self, other: &Self) -> Self {
        let mut out = Vec::with_capacity(self.terms.len() + other.terms.len());
        let (mut i, mut j) = (0, 0);
        while i < self.terms.len() || j < other.terms.len() {
            match (self.terms.get(i), other.terms.get(j)) {
                (Some(&(va, ca)), Some(&(vb, cb))) if va == vb => {
                    let c = ca + cb;
                    if !c.is_zero() {
                        out.push((va, c));
                    }
                    i += 1;
                    j += 1;
                }
                (Some(&(va, ca)), Some(&(vb, _))) if va < vb => {
                    out.push((va, ca));
                    i += 1;
                }
                (Some(_), Some(&(vb, cb))) => {
                    out.push((vb, cb));
                    j += 1;
                }
                (Some(&(va, ca)), None) => {
                    out.push((va, ca));
                    i += 1;
                }
                (None, Some(&(vb, cb))) => {
                    out.push((vb, cb));
                    j += 1;
                }
                (None, None) => unreachable!("loop condition"),
            }
        }
        LinComb {
            terms: out,
            constant: self.constant + other.constant,
        }
    }

    /// Subtracts another combination.
    pub fn sub(&self, other: &Self) -> Self {
        self.add(&other.scale(-F::ONE))
    }

    /// Scales by a constant.
    pub fn scale(&self, c: F) -> Self {
        if c.is_zero() {
            return Self::zero();
        }
        LinComb {
            terms: self.terms.iter().map(|(v, coeff)| (*v, *coeff * c)).collect(),
            constant: self.constant * c,
        }
    }

    /// Adds a constant.
    pub fn add_constant(&self, c: F) -> Self {
        let mut out = self.clone();
        out.constant += c;
        out
    }

    /// Evaluates under an assignment.
    pub fn eval(&self, assignment: &Assignment<F>) -> F {
        self.terms
            .iter()
            .map(|(v, c)| assignment.get(*v) * *c)
            .fold(self.constant, |acc, x| acc + x)
    }

    /// Number of additive terms, counting the constant if non-zero
    /// (the `K` accounting of Fig. 3 counts additive terms per
    /// constraint).
    pub fn num_terms(&self) -> usize {
        self.terms.len() + usize::from(!self.constant.is_zero())
    }
}

/// A general degree-2 ("Ginger") constraint:
/// `Σ qₖ·Wᵢₖ·Wⱼₖ + linear = 0`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GingerConstraint<F> {
    /// Degree-2 terms `(i, j, coeff)` with `i <= j`, no duplicates.
    pub quad: Vec<(VarId, VarId, F)>,
    /// The degree-1 part (including the constant).
    pub linear: LinComb<F>,
}

impl<F: Field> GingerConstraint<F> {
    /// A purely linear constraint `linear = 0`.
    pub fn linear(linear: LinComb<F>) -> Self {
        GingerConstraint {
            quad: Vec::new(),
            linear,
        }
    }

    /// Evaluates the constraint polynomial at an assignment (zero means
    /// satisfied).
    pub fn eval(&self, assignment: &Assignment<F>) -> F {
        let q: F = self
            .quad
            .iter()
            .map(|(i, j, c)| assignment.get(*i) * assignment.get(*j) * *c)
            .sum();
        q + self.linear.eval(assignment)
    }
}

/// A constraint system over general degree-2 constraints (§2.2).
#[derive(Clone, Debug, Default)]
pub struct GingerSystem<F> {
    /// Variable registry.
    pub vars: VarRegistry,
    /// The constraints (each `= 0`).
    pub constraints: Vec<GingerConstraint<F>>,
}

impl<F: Field> GingerSystem<F> {
    /// Returns `true` if `assignment` satisfies every constraint.
    pub fn is_satisfied(&self, assignment: &Assignment<F>) -> bool {
        self.constraints.iter().all(|c| c.eval(assignment).is_zero())
    }

    /// Index of the first violated constraint, if any.
    pub fn first_violation(&self, assignment: &Assignment<F>) -> Option<usize> {
        self.constraints
            .iter()
            .position(|c| !c.eval(assignment).is_zero())
    }
}

/// A quadratic-form ("Zaatar") constraint: `a · b = c` for degree-1 `a`,
/// `b`, `c` (§4).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QuadConstraint<F> {
    /// `p_A`.
    pub a: LinComb<F>,
    /// `p_B`.
    pub b: LinComb<F>,
    /// `p_C`.
    pub c: LinComb<F>,
}

impl<F: Field> QuadConstraint<F> {
    /// Returns `true` if the constraint holds under `assignment`.
    pub fn is_satisfied(&self, assignment: &Assignment<F>) -> bool {
        self.a.eval(assignment) * self.b.eval(assignment) == self.c.eval(assignment)
    }
}

/// A constraint system in quadratic form — the input to the QAP
/// construction (App. A.1).
#[derive(Clone, Debug, Default)]
pub struct QuadSystem<F> {
    /// Variable registry (shared indexing with any originating
    /// [`GingerSystem`]).
    pub vars: VarRegistry,
    /// The constraints.
    pub constraints: Vec<QuadConstraint<F>>,
}

impl<F: Field> QuadSystem<F> {
    /// Returns `true` if `assignment` satisfies every constraint.
    pub fn is_satisfied(&self, assignment: &Assignment<F>) -> bool {
        self.constraints.iter().all(|c| c.is_satisfied(assignment))
    }

    /// Index of the first violated constraint, if any.
    pub fn first_violation(&self, assignment: &Assignment<F>) -> Option<usize> {
        self.constraints
            .iter()
            .position(|c| !c.is_satisfied(assignment))
    }
}

/// A full assignment of values to variables, indexed by [`VarId`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Assignment<F> {
    values: Vec<F>,
}

impl<F: Field> Assignment<F> {
    /// An all-zero assignment for `n` variables.
    pub fn zeroed(n: usize) -> Self {
        Assignment {
            values: vec![F::ZERO; n],
        }
    }

    /// Builds from a complete value vector.
    pub fn from_values(values: Vec<F>) -> Self {
        Assignment { values }
    }

    /// The value of a variable.
    pub fn get(&self, v: VarId) -> F {
        self.values[v.0]
    }

    /// Sets the value of a variable.
    pub fn set(&mut self, v: VarId, value: F) {
        self.values[v.0] = value;
    }

    /// Number of variables covered.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` if empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// All values, by variable index.
    pub fn values(&self) -> &[F] {
        &self.values
    }

    /// Extracts the values of the given variables, in order.
    pub fn extract(&self, vars: &[VarId]) -> Vec<F> {
        vars.iter().map(|v| self.get(*v)).collect()
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zaatar_field::F61;

    fn f(x: u64) -> F61 {
        F61::from_u64(x)
    }

    #[test]
    fn registry_partitions() {
        let mut reg = VarRegistry::default();
        let x = reg.alloc(Kind::Input);
        let y = reg.alloc(Kind::Output);
        let z1 = reg.alloc(Kind::Aux);
        let z2 = reg.alloc(Kind::Aux);
        assert_eq!(reg.len(), 4);
        assert_eq!(reg.kind(x), Kind::Input);
        assert_eq!(reg.count(Kind::Aux), 2);
        assert_eq!(reg.of_kind(Kind::Aux), vec![z1, z2]);
        assert_eq!(reg.of_kind(Kind::Output), vec![y]);
    }

    #[test]
    fn lincomb_add_merges_and_cancels() {
        let v0 = VarId(0);
        let v1 = VarId(1);
        let a = LinComb::var(v0).add(&LinComb::scaled_var(v1, f(3)));
        let b = LinComb::scaled_var(v0, -F61::ONE).add(&LinComb::constant(f(5)));
        let s = a.add(&b);
        assert_eq!(s.terms(), &[(v1, f(3))]);
        assert_eq!(s.constant_term(), f(5));
    }

    #[test]
    fn lincomb_eval() {
        let mut asg = Assignment::zeroed(2);
        asg.set(VarId(0), f(10));
        asg.set(VarId(1), f(20));
        let lc = LinComb::var(VarId(0))
            .add(&LinComb::scaled_var(VarId(1), f(2)))
            .add_constant(f(7));
        assert_eq!(lc.eval(&asg), f(57));
    }

    #[test]
    fn lincomb_as_single_var() {
        assert_eq!(LinComb::<F61>::var(VarId(3)).as_single_var(), Some(VarId(3)));
        assert_eq!(LinComb::<F61>::scaled_var(VarId(3), f(2)).as_single_var(), None);
        assert_eq!(
            LinComb::<F61>::var(VarId(3)).add_constant(f(1)).as_single_var(),
            None
        );
    }

    #[test]
    fn lincomb_num_terms_counts_constant() {
        let lc = LinComb::var(VarId(0)).add_constant(f(1));
        assert_eq!(lc.num_terms(), 2);
        assert_eq!(LinComb::<F61>::var(VarId(0)).num_terms(), 1);
        assert_eq!(LinComb::<F61>::zero().num_terms(), 0);
    }

    #[test]
    fn ginger_constraint_eval() {
        // Z0·Z1 + Z2 − 6 = 0 at (2, 3, 0): 6 − 6 = 0? No — 2·3 + 0 − 6 = 0.
        let c = GingerConstraint {
            quad: vec![(VarId(0), VarId(1), F61::ONE)],
            linear: LinComb::var(VarId(2)).add_constant(-f(6)),
        };
        let mut asg = Assignment::zeroed(3);
        asg.set(VarId(0), f(2));
        asg.set(VarId(1), f(3));
        assert!(c.eval(&asg).is_zero());
        asg.set(VarId(2), f(1));
        assert!(!c.eval(&asg).is_zero());
    }

    #[test]
    fn quad_constraint_decrement_by_three() {
        // The paper's §2.1 example: decrement-by-3 is equivalent to
        // {X − Z = 0, Y − (Z − 3) = 0}; in quadratic form both are
        // (linear)·1 = 0.
        let mut vars = VarRegistry::default();
        let x = vars.alloc(Kind::Input);
        let y = vars.alloc(Kind::Output);
        let z = vars.alloc(Kind::Aux);
        let sys = QuadSystem {
            vars,
            constraints: vec![
                QuadConstraint {
                    a: LinComb::var(x).sub(&LinComb::var(z)),
                    b: LinComb::constant(F61::ONE),
                    c: LinComb::zero(),
                },
                QuadConstraint {
                    a: LinComb::var(y).sub(&LinComb::var(z).add_constant(-f(3))),
                    b: LinComb::constant(F61::ONE),
                    c: LinComb::zero(),
                },
            ],
        };
        let mut asg = Assignment::zeroed(3);
        asg.set(x, f(10));
        asg.set(y, f(7));
        asg.set(z, f(10));
        assert!(sys.is_satisfied(&asg));
        asg.set(y, f(8));
        assert_eq!(sys.first_violation(&asg), Some(1));
    }

    #[test]
    fn assignment_extract() {
        let mut asg = Assignment::zeroed(3);
        asg.set(VarId(2), f(9));
        assert_eq!(asg.extract(&[VarId(2), VarId(0)]), vec![f(9), F61::ZERO]);
    }
}

impl<F: Field> fmt::Display for LinComb<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (v, c) in &self.terms {
            if !first {
                write!(f, " + ")?;
            }
            first = false;
            if *c == F::ONE {
                write!(f, "{v}")?;
            } else {
                write!(f, "{c}*{v}")?;
            }
        }
        if !self.constant.is_zero() || first {
            if !first {
                write!(f, " + ")?;
            }
            write!(f, "{}", self.constant)?;
        }
        Ok(())
    }
}

impl<F: Field> fmt::Display for GingerConstraint<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (i, j, c) in &self.quad {
            if !first {
                write!(f, " + ")?;
            }
            first = false;
            if *c == F::ONE {
                write!(f, "{i}*{j}")?;
            } else {
                write!(f, "{c}*{i}*{j}")?;
            }
        }
        if !first {
            write!(f, " + ")?;
        }
        write!(f, "{} = 0", self.linear)
    }
}

impl<F: Field> fmt::Display for QuadConstraint<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}) * ({}) = {}", self.a, self.b, self.c)
    }
}

#[cfg(test)]
mod display_tests {
    use super::*;
    use zaatar_field::F61;

    fn f(x: u64) -> F61 {
        F61::from_u64(x)
    }

    #[test]
    fn lincomb_display() {
        let lc = LinComb::var(VarId(0))
            .add(&LinComb::scaled_var(VarId(3), f(2)))
            .add_constant(f(7));
        assert_eq!(format!("{lc}"), "w0 + 0x2*w3 + 0x7");
        assert_eq!(format!("{}", LinComb::<F61>::zero()), "0x0");
        assert_eq!(format!("{}", LinComb::<F61>::var(VarId(5))), "w5");
    }

    #[test]
    fn ginger_constraint_display() {
        let c = GingerConstraint {
            quad: vec![(VarId(0), VarId(1), f(3))],
            linear: LinComb::var(VarId(2)).add_constant(-f(6)),
        };
        let s = format!("{c}");
        assert!(s.starts_with("0x3*w0*w1 + "), "{s}");
        assert!(s.ends_with("= 0"), "{s}");
    }

    #[test]
    fn quad_constraint_display() {
        let c = QuadConstraint::<F61> {
            a: LinComb::var(VarId(0)),
            b: LinComb::constant(F61::ONE),
            c: LinComb::var(VarId(1)),
        };
        assert_eq!(format!("{c}"), "(w0) * (0x1) = w1");
    }
}
