//! Numeric encodings: signed integers and primitive fixed-point rationals
//! in a prime field.
//!
//! The paper's computations use 32-bit signed integers embedded in a
//! 128-bit field, and "primitive floating-point" rationals — values
//! `a/2^q` with bounded numerator and power-of-two denominator — for the
//! bisection and shortest-path benchmarks (§5.1; the representation is
//! from Ginger \[54\]). Addition of same-scale fixed-point values is exact;
//! multiplication adds scales; comparisons reduce to integer comparisons
//! of numerators. Bit widths grow accordingly, which is why bisection
//! needs the 220-bit field.

use zaatar_field::{Field, PrimeField};

/// Embeds a signed integer into the field (`x < 0 ↦ p − |x|`).
pub fn embed_i64<F: Field>(x: i64) -> F {
    F::from_i64(x)
}

/// Embeds a signed 128-bit integer.
pub fn embed_i128<F: Field>(x: i128) -> F {
    if x < 0 {
        -F::from_u128(x.unsigned_abs())
    } else {
        F::from_u128(x as u128)
    }
}

/// Decodes a field element back to a signed integer: values in the lower
/// half of the field `[0, p/2]` are non-negative, values in the upper
/// half represent `−(p − x)`. Returns `None` if the magnitude does not
/// fit an `i64`.
pub fn decode_i64<F: PrimeField>(x: F) -> Option<i64> {
    let words = x.to_canonical_words();
    // floor(p/2), little-endian.
    let mut half = F::modulus_words();
    let mut carry = 0u64;
    for w in half.iter_mut().rev() {
        let next = *w & 1;
        *w = (*w >> 1) | (carry << 63);
        carry = next;
    }
    let in_lower_half = {
        let mut le = true;
        for i in (0..words.len()).rev() {
            if words[i] != half[i] {
                le = words[i] < half[i];
                break;
            }
        }
        le
    };
    if in_lower_half {
        let fits = words[1..].iter().all(|w| *w == 0) && words[0] <= i64::MAX as u64;
        fits.then(|| words[0] as i64)
    } else {
        let neg_words = (-x).to_canonical_words();
        let fits = neg_words[1..].iter().all(|w| *w == 0) && neg_words[0] <= (1 << 63);
        fits.then(|| (neg_words[0] as i64).wrapping_neg())
    }
}

/// A fixed-point rational `num / 2^scale` embedded as the field element
/// `num · (2^scale)⁻¹` (the "primitive floating-point" type of \[54\]).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct FixedPoint {
    /// The power-of-two denominator exponent `q`.
    pub scale: u32,
}

impl FixedPoint {
    /// A fixed-point format with denominator `2^scale`.
    pub fn new(scale: u32) -> Self {
        FixedPoint { scale }
    }

    /// Encodes the rational `num / 2^scale`.
    pub fn encode<F: Field>(&self, num: i64) -> F {
        let denom_inv = F::from_u64(2)
            .pow(self.scale as u64)
            .inverse()
            .expect("2^q is nonzero in an odd-characteristic field");
        embed_i64::<F>(num) * denom_inv
    }

    /// Decodes a field element known to be `num / 2^scale` back to its
    /// numerator. Returns `None` if the numerator does not fit `i64`.
    pub fn decode<F: PrimeField>(&self, x: F) -> Option<i64> {
        let scaled = x * F::from_u64(2).pow(self.scale as u64);
        decode_i64(scaled)
    }

    /// The numerator of this value when re-expressed at a finer scale:
    /// `num/2^q = (num·2^(t−q))/2^t`. The *field encoding* is unchanged
    /// (it represents the rational itself), so re-scaling is free in
    /// constraints; only width accounting changes.
    ///
    /// # Panics
    ///
    /// Panics if `target < self.scale`.
    pub fn numerator_at_scale(&self, num: i64, target: u32) -> i64 {
        assert!(target >= self.scale, "can only rescale to finer precision");
        num << (target - self.scale)
    }
}

/// The width in bits needed to compare two fixed-point values with
/// `num_width`-bit numerators at scale `q`: the comparison operates on
/// numerators, so the width is just `num_width` (§5.1's accounting).
pub fn comparison_width(num_width: u32, _scale: u32) -> usize {
    num_width as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use zaatar_field::{F128, F220, F61};

    #[test]
    fn embed_decode_round_trip() {
        for v in [0i64, 1, -1, 42, -42, i64::MAX / 2, -(i64::MAX / 2)] {
            assert_eq!(decode_i64::<F128>(embed_i64(v)), Some(v), "v={v}");
            assert_eq!(decode_i64::<F61>(embed_i64(v % (1 << 59))), Some(v % (1 << 59)));
        }
    }

    #[test]
    fn decode_rejects_large() {
        // A huge positive value (p−1)/2-ish decodes to None.
        let big = F128::from_u128(u128::MAX / 3);
        assert_eq!(decode_i64(big), None);
    }

    #[test]
    fn embed_i128_negative() {
        let x = embed_i128::<F220>(-5_000_000_000_000_000_000_000i128);
        let y = embed_i128::<F220>(5_000_000_000_000_000_000_000i128);
        assert_eq!(x + y, F220::ZERO);
    }

    #[test]
    fn fixed_point_round_trip() {
        let fp = FixedPoint::new(5);
        for num in [0i64, 1, -1, 31, -32, 1000] {
            let enc: F128 = fp.encode(num);
            assert_eq!(fp.decode(enc), Some(num), "num={num}");
        }
    }

    #[test]
    fn fixed_point_addition_is_exact() {
        // 3/32 + 5/32 = 8/32.
        let fp = FixedPoint::new(5);
        let a: F128 = fp.encode(3);
        let b: F128 = fp.encode(5);
        assert_eq!(fp.decode(a + b), Some(8));
    }

    #[test]
    fn fixed_point_multiplication_doubles_scale() {
        // (3/4)·(5/4) = 15/16: encode at scale 2, decode at scale 4.
        let fp2 = FixedPoint::new(2);
        let fp4 = FixedPoint::new(4);
        let a: F128 = fp2.encode(3);
        let b: F128 = fp2.encode(5);
        assert_eq!(fp4.decode(a * b), Some(15));
    }

    #[test]
    fn mixed_scale_addition_via_common_scale() {
        // 1/2 + 1/8 = 5/8: rescale numerators to scale 3.
        let half: F128 = FixedPoint::new(1).encode(1);
        let eighth: F128 = FixedPoint::new(3).encode(1);
        assert_eq!(FixedPoint::new(3).decode(half + eighth), Some(5));
    }
}
