//! Text serialization for constraint systems (`.zcs`).
//!
//! The paper's toolchain compiled SFDL once and stored the constraints
//! for reuse across batches; this module provides the same workflow: a
//! line-oriented, human-inspectable format for [`GingerSystem`] and
//! [`QuadSystem`], with strict validation on load.
//!
//! Format sketch (`#`-comments allowed):
//!
//! ```text
//! zcs 1 ginger
//! vars IIAAO           # one letter per variable: I/O/A
//! c q 0*2*1 3*3*2 | l 4:-1 | k 0x5   # quad terms | linear terms | constant
//! ...
//! ```

use zaatar_field::PrimeField;

use crate::ir::{
    Assignment, GingerConstraint, GingerSystem, Kind, LinComb, QuadConstraint, QuadSystem, VarId,
    VarRegistry,
};

/// Errors from parsing a `.zcs` document.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ZcsError {
    /// Description of the problem.
    pub msg: String,
    /// 1-based line number.
    pub line: usize,
}

impl core::fmt::Display for ZcsError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "zcs line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ZcsError {}

fn err(msg: impl Into<String>, line: usize) -> ZcsError {
    ZcsError {
        msg: msg.into(),
        line,
    }
}

fn field_to_hex<F: PrimeField>(x: F) -> String {
    format!("{x}")
}

fn field_from_hex<F: PrimeField>(s: &str, line: usize) -> Result<F, ZcsError> {
    let digits = s
        .strip_prefix("0x")
        .ok_or_else(|| err(format!("expected 0x-prefixed field element, got '{s}'"), line))?;
    if digits.is_empty() || digits.len() > 16 * F::NUM_WORDS {
        return Err(err(format!("bad field element '{s}'"), line));
    }
    let mut words = vec![0u64; F::NUM_WORDS];
    for (i, ch) in digits.bytes().rev().enumerate() {
        let v = (ch as char)
            .to_digit(16)
            .ok_or_else(|| err(format!("bad hex digit in '{s}'"), line))? as u64;
        words[i / 16] |= v << (4 * (i % 16));
    }
    F::from_canonical_words(&words).ok_or_else(|| err(format!("unreduced element '{s}'"), line))
}

fn lincomb_to_string<F: PrimeField>(lc: &LinComb<F>) -> String {
    let mut parts: Vec<String> = lc
        .terms()
        .iter()
        .map(|(v, c)| format!("{}:{}", v.0, field_to_hex(*c)))
        .collect();
    if !lc.constant_term().is_zero() {
        parts.push(format!("k:{}", field_to_hex(lc.constant_term())));
    }
    if parts.is_empty() {
        "0".to_string()
    } else {
        parts.join(" ")
    }
}

fn lincomb_from_str<F: PrimeField>(
    s: &str,
    num_vars: usize,
    line: usize,
) -> Result<LinComb<F>, ZcsError> {
    let mut lc = LinComb::zero();
    let s = s.trim();
    if s == "0" {
        return Ok(lc);
    }
    for part in s.split_whitespace() {
        let (head, value) = part
            .split_once(':')
            .ok_or_else(|| err(format!("bad term '{part}'"), line))?;
        let coeff = field_from_hex::<F>(value, line)?;
        if head == "k" {
            lc = lc.add_constant(coeff);
        } else {
            let idx: usize = head
                .parse()
                .map_err(|_| err(format!("bad variable index '{head}'"), line))?;
            if idx >= num_vars {
                return Err(err(format!("variable {idx} out of range"), line));
            }
            lc = lc.add(&LinComb::scaled_var(VarId(idx), coeff));
        }
    }
    Ok(lc)
}

fn vars_to_string(vars: &VarRegistry) -> String {
    (0..vars.len())
        .map(|i| match vars.kind(VarId(i)) {
            Kind::Input => 'I',
            Kind::Output => 'O',
            Kind::Aux => 'A',
        })
        .collect()
}

fn vars_from_str(s: &str, line: usize) -> Result<VarRegistry, ZcsError> {
    let mut vars = VarRegistry::default();
    for ch in s.chars() {
        let kind = match ch {
            'I' => Kind::Input,
            'O' => Kind::Output,
            'A' => Kind::Aux,
            other => return Err(err(format!("bad variable kind '{other}'"), line)),
        };
        vars.alloc(kind);
    }
    Ok(vars)
}

/// Serializes a Ginger (general degree-2) system.
pub fn ginger_to_zcs<F: PrimeField>(sys: &GingerSystem<F>) -> String {
    let mut out = String::new();
    out.push_str("zcs 1 ginger\n");
    out.push_str(&format!("vars {}\n", vars_to_string(&sys.vars)));
    for c in &sys.constraints {
        let quad: Vec<String> = c
            .quad
            .iter()
            .map(|(i, j, coeff)| format!("{}*{}:{}", i.0, j.0, field_to_hex(*coeff)))
            .collect();
        out.push_str(&format!(
            "c {} | {}\n",
            if quad.is_empty() {
                "0".to_string()
            } else {
                quad.join(" ")
            },
            lincomb_to_string(&c.linear)
        ));
    }
    out
}

/// Parses a Ginger system.
pub fn ginger_from_zcs<F: PrimeField>(text: &str) -> Result<GingerSystem<F>, ZcsError> {
    let mut lines = numbered_lines(text);
    let (line_no, header) = lines
        .next()
        .ok_or_else(|| err("empty document", 1))?;
    if header != "zcs 1 ginger" {
        return Err(err(format!("bad header '{header}'"), line_no));
    }
    let (line_no, vars_line) = lines.next().ok_or_else(|| err("missing vars", line_no))?;
    let vars = parse_vars_line(vars_line, line_no)?;
    let num_vars = vars.len();
    let mut constraints = Vec::new();
    for (line_no, line) in lines {
        let rest = line
            .strip_prefix("c ")
            .ok_or_else(|| err(format!("expected constraint line, got '{line}'"), line_no))?;
        let (quad_str, linear_str) = rest
            .split_once('|')
            .ok_or_else(|| err("constraint missing '|'", line_no))?;
        let mut quad = Vec::new();
        let quad_str = quad_str.trim();
        if quad_str != "0" {
            for term in quad_str.split_whitespace() {
                let (pair, coeff_str) = term
                    .split_once(':')
                    .ok_or_else(|| err(format!("bad quad term '{term}'"), line_no))?;
                let (i, j) = pair
                    .split_once('*')
                    .ok_or_else(|| err(format!("bad quad pair '{pair}'"), line_no))?;
                let i: usize = i
                    .parse()
                    .map_err(|_| err(format!("bad index '{i}'"), line_no))?;
                let j: usize = j
                    .parse()
                    .map_err(|_| err(format!("bad index '{j}'"), line_no))?;
                if i >= num_vars || j >= num_vars {
                    return Err(err("quad index out of range", line_no));
                }
                quad.push((VarId(i), VarId(j), field_from_hex::<F>(coeff_str, line_no)?));
            }
        }
        constraints.push(GingerConstraint {
            quad,
            linear: lincomb_from_str(linear_str, num_vars, line_no)?,
        });
    }
    Ok(GingerSystem { vars, constraints })
}

/// Serializes a quadratic-form system.
pub fn quad_to_zcs<F: PrimeField>(sys: &QuadSystem<F>) -> String {
    let mut out = String::new();
    out.push_str("zcs 1 quad\n");
    out.push_str(&format!("vars {}\n", vars_to_string(&sys.vars)));
    for c in &sys.constraints {
        out.push_str(&format!(
            "c {} | {} | {}\n",
            lincomb_to_string(&c.a),
            lincomb_to_string(&c.b),
            lincomb_to_string(&c.c)
        ));
    }
    out
}

/// Parses a quadratic-form system.
pub fn quad_from_zcs<F: PrimeField>(text: &str) -> Result<QuadSystem<F>, ZcsError> {
    let mut lines = numbered_lines(text);
    let (line_no, header) = lines
        .next()
        .ok_or_else(|| err("empty document", 1))?;
    if header != "zcs 1 quad" {
        return Err(err(format!("bad header '{header}'"), line_no));
    }
    let (line_no, vars_line) = lines.next().ok_or_else(|| err("missing vars", line_no))?;
    let vars = parse_vars_line(vars_line, line_no)?;
    let num_vars = vars.len();
    let mut constraints = Vec::new();
    for (line_no, line) in lines {
        let rest = line
            .strip_prefix("c ")
            .ok_or_else(|| err(format!("expected constraint line, got '{line}'"), line_no))?;
        let mut parts = rest.splitn(3, '|');
        let a = parts
            .next()
            .ok_or_else(|| err("missing p_A", line_no))?;
        let b = parts
            .next()
            .ok_or_else(|| err("missing p_B", line_no))?;
        let c = parts
            .next()
            .ok_or_else(|| err("missing p_C", line_no))?;
        constraints.push(QuadConstraint {
            a: lincomb_from_str(a, num_vars, line_no)?,
            b: lincomb_from_str(b, num_vars, line_no)?,
            c: lincomb_from_str(c, num_vars, line_no)?,
        });
    }
    Ok(QuadSystem { vars, constraints })
}

fn parse_vars_line(line: &str, line_no: usize) -> Result<VarRegistry, ZcsError> {
    let rest = line
        .strip_prefix("vars ")
        .ok_or_else(|| err(format!("expected 'vars', got '{line}'"), line_no))?;
    vars_from_str(rest.trim(), line_no)
}

fn numbered_lines(text: &str) -> impl Iterator<Item = (usize, &str)> {
    text.lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'))
}

/// Checks an assignment against a parsed quad system (convenience for
/// loaded artifacts).
pub fn check_assignment<F: PrimeField>(sys: &QuadSystem<F>, asg: &Assignment<F>) -> bool {
    sys.is_satisfied(asg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Builder;
    use crate::transform::ginger_to_quad;
    use zaatar_field::{Field, F61};

    fn sample() -> (GingerSystem<F61>, Assignment<F61>) {
        let mut b = Builder::<F61>::new();
        let x = b.alloc_input();
        let y = b.alloc_input();
        let p = b.mul(&x.add_constant(F61::from_i64(-2)), &y);
        let lt = b.less_than(&x, &y, 6);
        b.bind_output(&p.add(&lt));
        let (sys, solver) = b.finish();
        let asg = solver
            .solve(&[F61::from_u64(5), F61::from_u64(9)])
            .unwrap();
        (sys, asg)
    }

    #[test]
    fn ginger_round_trip() {
        let (sys, asg) = sample();
        let text = ginger_to_zcs(&sys);
        let back: GingerSystem<F61> = ginger_from_zcs(&text).unwrap();
        assert_eq!(back.constraints, sys.constraints);
        assert_eq!(back.vars.len(), sys.vars.len());
        assert!(back.is_satisfied(&asg));
        // And the loaded system still rejects bad assignments.
        let mut bad = asg.clone();
        bad.set(VarId(0), F61::from_u64(6));
        assert!(!back.is_satisfied(&bad));
    }

    #[test]
    fn quad_round_trip() {
        let (sys, asg) = sample();
        let t = ginger_to_quad(&sys);
        let text = quad_to_zcs(&t.system);
        let back: QuadSystem<F61> = quad_from_zcs(&text).unwrap();
        assert_eq!(back.constraints, t.system.constraints);
        let ext = t.extend_assignment(&asg);
        assert!(check_assignment(&back, &ext));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let (sys, _) = sample();
        let text = ginger_to_zcs(&sys);
        let with_noise = format!("# compiled artifact\n\n{text}\n# end\n");
        assert!(ginger_from_zcs::<F61>(&with_noise).is_ok());
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(ginger_from_zcs::<F61>("").is_err());
        assert!(ginger_from_zcs::<F61>("zcs 1 quad\nvars A\n").is_err());
        assert!(ginger_from_zcs::<F61>("zcs 1 ginger\nvars X\n").is_err());
        assert!(
            ginger_from_zcs::<F61>("zcs 1 ginger\nvars AA\nc 0*9:0x1 | 0\n").is_err(),
            "out-of-range variable index"
        );
        assert!(
            ginger_from_zcs::<F61>("zcs 1 ginger\nvars AA\nc 0 | 0:0xffffffffffffffff\n")
                .is_err(),
            "unreduced field element"
        );
        assert!(quad_from_zcs::<F61>("zcs 1 ginger\nvars A\n").is_err());
    }

    #[test]
    fn loaded_system_drives_the_protocol() {
        // Compile → save → load → QAP still proves/rejects correctly is
        // covered by reusing ir-level equality above; here just confirm
        // the kinds survive (the QAP ordering depends on them).
        let (sys, _) = sample();
        let text = ginger_to_zcs(&sys);
        let back: GingerSystem<F61> = ginger_from_zcs(&text).unwrap();
        for i in 0..sys.vars.len() {
            assert_eq!(back.vars.kind(VarId(i)), sys.vars.kind(VarId(i)));
        }
    }

    #[test]
    fn field_hex_round_trips() {
        for v in [0u64, 1, 42, u64::MAX >> 4] {
            let x = F61::from_u64(v);
            let s = field_to_hex(x);
            assert_eq!(field_from_hex::<F61>(&s, 1).unwrap(), x);
        }
        assert!(field_from_hex::<F61>("17", 1).is_err(), "missing 0x");
        assert!(field_from_hex::<F61>("0xzz", 1).is_err());
    }
}
