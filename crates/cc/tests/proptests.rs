//! Property-style tests for the constraint compiler: random programs and
//! random gadget circuits must always produce constraint systems whose
//! solver-generated witnesses satisfy them, whose transforms preserve
//! satisfiability, and whose outputs match direct evaluation. Driven by
//! a small in-tree deterministic generator (the build must work offline,
//! so no external proptest dependency).

use zaatar_cc::lang::{compile, CompileOptions};
use zaatar_cc::numeric::decode_i64;
use zaatar_cc::{ginger_stats, ginger_to_quad, ginger_to_quad_optimized, linearize_io, Builder};
use zaatar_field::{Field, F61};

/// Deterministic splitmix64 generator standing in for proptest.
struct Gen(u64);

impl Gen {
    fn new(seed: u64) -> Self {
        Gen(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        lo + (self.next_u64() % ((hi - lo) as u64)) as i64
    }

    fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// A small random expression AST over two inputs `a`, `b` and constants.
#[derive(Clone, Debug)]
enum E {
    A,
    B,
    Const(i8),
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    Lt(Box<E>, Box<E>),
    Eq(Box<E>, Box<E>),
}

impl E {
    fn to_zsl(&self) -> String {
        match self {
            E::A => "a".into(),
            E::B => "b".into(),
            E::Const(c) => {
                if *c < 0 {
                    format!("(0 - {})", -(*c as i64))
                } else {
                    format!("{c}")
                }
            }
            E::Add(l, r) => format!("({} + {})", l.to_zsl(), r.to_zsl()),
            E::Sub(l, r) => format!("({} - {})", l.to_zsl(), r.to_zsl()),
            E::Mul(l, r) => format!("({} * {})", l.to_zsl(), r.to_zsl()),
            E::Lt(l, r) => format!("({} < {})", l.to_zsl(), r.to_zsl()),
            E::Eq(l, r) => format!("({} == {})", l.to_zsl(), r.to_zsl()),
        }
    }

    /// Direct evaluation over i128 (wide enough for depth-3 products of
    /// 8-bit values).
    fn eval(&self, a: i128, b: i128) -> i128 {
        match self {
            E::A => a,
            E::B => b,
            E::Const(c) => *c as i128,
            E::Add(l, r) => l.eval(a, b) + r.eval(a, b),
            E::Sub(l, r) => l.eval(a, b) - r.eval(a, b),
            E::Mul(l, r) => l.eval(a, b) * r.eval(a, b),
            E::Lt(l, r) => i128::from(l.eval(a, b) < r.eval(a, b)),
            E::Eq(l, r) => i128::from(l.eval(a, b) == r.eval(a, b)),
        }
    }

    /// Magnitude bound used to keep comparisons inside the gadget width.
    fn bound(&self) -> i128 {
        match self {
            E::A | E::B => 127,
            E::Const(_) => 127,
            E::Add(l, r) | E::Sub(l, r) => l.bound() + r.bound(),
            E::Mul(l, r) => l.bound() * r.bound(),
            E::Lt(_, _) | E::Eq(_, _) => 1,
        }
    }
}

/// A random expression of bounded depth.
fn arb_expr(g: &mut Gen, depth: u32) -> E {
    if depth == 0 || g.next_u64().is_multiple_of(4) {
        return match g.next_u64() % 3 {
            0 => E::A,
            1 => E::B,
            _ => E::Const(g.next_u64() as i8),
        };
    }
    let l = Box::new(arb_expr(g, depth - 1));
    let r = Box::new(arb_expr(g, depth - 1));
    match g.next_u64() % 5 {
        0 => E::Add(l, r),
        1 => E::Sub(l, r),
        2 => E::Mul(l, r),
        3 => E::Lt(l, r),
        _ => E::Eq(l, r),
    }
}

/// A random expression whose magnitude bound keeps comparisons inside
/// the gadget width.
fn arb_bounded_expr(g: &mut Gen) -> E {
    loop {
        let e = arb_expr(g, 3);
        if e.bound() < (1 << 40) {
            return e;
        }
    }
}

/// Random expressions compile, solve, satisfy their constraints, and
/// equal direct evaluation — in both compiler modes.
#[test]
fn compiled_expressions_match_direct_evaluation() {
    let mut g = Gen::new(1);
    for _ in 0..48 {
        let e = arb_bounded_expr(&mut g);
        let a = g.range_i64(-100, 100);
        let b = g.range_i64(-100, 100);
        let src = format!("input a; input b; output y; y = {};", e.to_zsl());
        let expect = e.eval(a as i128, b as i128);
        for materialize in [true, false] {
            let opts = CompileOptions {
                width: 44,
                materialize,
                ..CompileOptions::default()
            };
            let compiled = compile::<F61>(&src, &opts).expect("compiles");
            let ins = vec![F61::from_i64(a), F61::from_i64(b)];
            let asg = compiled.solver.solve(&ins).expect("solves");
            assert!(compiled.ginger.is_satisfied(&asg));
            let y = decode_i64(asg.extract(compiled.solver.outputs())[0]).expect("small");
            assert_eq!(y as i128, expect, "{src}");
        }
    }
}

/// The §4 transform preserves (un)satisfiability on random circuits.
#[test]
fn transform_preserves_satisfiability() {
    let mut g = Gen::new(2);
    for _ in 0..48 {
        let e = arb_bounded_expr(&mut g);
        let a = g.range_i64(-50, 50);
        let b = g.range_i64(-50, 50);
        let corrupt = g.bool();
        let src = format!("input a; input b; output y; y = {};", e.to_zsl());
        let opts = CompileOptions {
            width: 44,
            materialize: true,
            ..CompileOptions::default()
        };
        let compiled = compile::<F61>(&src, &opts).expect("compiles");
        let ins = vec![F61::from_i64(a), F61::from_i64(b)];
        let mut asg = compiled.solver.solve(&ins).expect("solves");
        if corrupt {
            let out = compiled.solver.outputs()[0];
            asg.set(out, asg.get(out) + F61::ONE);
        }
        let sat_g = compiled.ginger.is_satisfied(&asg);
        for t in [
            ginger_to_quad(&compiled.ginger),
            ginger_to_quad_optimized(&compiled.ginger),
        ] {
            let ext = t.extend_assignment(&asg);
            assert_eq!(t.system.is_satisfied(&ext), sat_g);
        }
        let lin = linearize_io(&compiled.ginger);
        assert_eq!(lin.system.is_satisfied(&lin.extend_assignment(&asg)), sat_g);
    }
}

/// Fig. 3's size relations hold for arbitrary compiled circuits.
#[test]
fn size_relations_hold() {
    let mut g = Gen::new(3);
    for _ in 0..48 {
        let e = arb_expr(&mut g, 3);
        let src = format!("input a; input b; output y; y = {};", e.to_zsl());
        let opts = CompileOptions {
            width: 44,
            materialize: true,
            ..CompileOptions::default()
        };
        let compiled = compile::<F61>(&src, &opts).expect("compiles");
        let stats = ginger_stats(&compiled.ginger);
        let t = ginger_to_quad(&compiled.ginger);
        let z = zaatar_cc::quad_stats(&t.system);
        assert_eq!(z.num_unbound, stats.num_unbound + stats.k2_distinct);
        assert_eq!(z.num_constraints, stats.num_constraints + stats.k2_distinct);
        assert_eq!(t.k2(), stats.k2_distinct);
    }
}

/// The comparison gadget agrees with native `<` across its full
/// contracted range.
#[test]
fn less_than_gadget_is_correct() {
    let mut g = Gen::new(4);
    for _ in 0..64 {
        let a = g.range_i64(-(1 << 20), 1 << 20);
        let b = g.range_i64(-(1 << 20), 1 << 20);
        let mut builder = Builder::<F61>::new();
        let x = builder.alloc_input();
        let y = builder.alloc_input();
        let lt = builder.less_than(&x, &y, 22);
        builder.bind_output(&lt);
        let (sys, solver) = builder.finish();
        let asg = solver.solve(&[F61::from_i64(a), F61::from_i64(b)]).unwrap();
        assert!(sys.is_satisfied(&asg));
        let got = asg.extract(solver.outputs())[0];
        assert_eq!(got, F61::from_u64(u64::from(a < b)));
    }
}

/// `is_eq` / `is_nonzero` agree with native equality.
#[test]
fn equality_gadget_is_correct() {
    let mut g = Gen::new(5);
    for case in 0..64 {
        let a = g.next_u64() as i32;
        // Mix in genuinely equal pairs (random i32s almost never collide).
        let b = if case % 4 == 0 { a } else { g.next_u64() as i32 };
        let mut builder = Builder::<F61>::new();
        let x = builder.alloc_input();
        let y = builder.alloc_input();
        let eq = builder.is_eq(&x, &y);
        builder.bind_output(&eq);
        let (sys, solver) = builder.finish();
        let asg = solver
            .solve(&[F61::from_i64(a as i64), F61::from_i64(b as i64)])
            .unwrap();
        assert!(sys.is_satisfied(&asg));
        assert_eq!(
            asg.extract(solver.outputs())[0],
            F61::from_u64(u64::from(a == b))
        );
    }
}

/// Bit decomposition round-trips arbitrary values in range.
#[test]
fn bit_decompose_recomposes() {
    let mut g = Gen::new(6);
    for _ in 0..48 {
        let v = g.next_u64() % (1 << 48);
        let mut builder = Builder::<F61>::new();
        let x = builder.alloc_input();
        let bits = builder.bit_decompose(&x, 48);
        let (sys, solver) = builder.finish();
        let asg = solver.solve(&[F61::from_u64(v)]).unwrap();
        assert!(sys.is_satisfied(&asg));
        let mut recomposed = 0u64;
        for (i, bit) in bits.iter().enumerate() {
            let val = bit.eval(&asg);
            assert!(val == F61::ZERO || val == F61::ONE);
            if val == F61::ONE {
                recomposed |= 1 << i;
            }
        }
        assert_eq!(recomposed, v);
    }
}

/// The pretty-printer round-trips random expression programs.
#[test]
fn formatter_round_trips() {
    use zaatar_cc::lang::{format_program, parse};
    let mut g = Gen::new(7);
    for _ in 0..128 {
        let e = arb_expr(&mut g, 3);
        let src = format!("input a; input b; output y; y = {};", e.to_zsl());
        let ast1 = parse(&src).expect("parses");
        let printed = format_program(&ast1);
        let ast2 = parse(&printed).unwrap_or_else(|err| panic!("reparse failed: {err}\n{printed}"));
        assert_eq!(ast1, ast2);
    }
}
