//! Property tests for the constraint compiler: random programs and
//! random gadget circuits must always produce constraint systems whose
//! solver-generated witnesses satisfy them, whose transforms preserve
//! satisfiability, and whose outputs match direct evaluation.

use proptest::prelude::*;
use zaatar_cc::lang::{compile, CompileOptions};
use zaatar_cc::numeric::decode_i64;
use zaatar_cc::{ginger_stats, ginger_to_quad, ginger_to_quad_optimized, linearize_io, Builder};
use zaatar_field::{Field, F61};

/// A small random expression AST over two inputs `a`, `b` and constants.
#[derive(Clone, Debug)]
enum E {
    A,
    B,
    Const(i8),
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    Lt(Box<E>, Box<E>),
    Eq(Box<E>, Box<E>),
}

impl E {
    fn to_zsl(&self) -> String {
        match self {
            E::A => "a".into(),
            E::B => "b".into(),
            E::Const(c) => {
                if *c < 0 {
                    format!("(0 - {})", -(*c as i64))
                } else {
                    format!("{c}")
                }
            }
            E::Add(l, r) => format!("({} + {})", l.to_zsl(), r.to_zsl()),
            E::Sub(l, r) => format!("({} - {})", l.to_zsl(), r.to_zsl()),
            E::Mul(l, r) => format!("({} * {})", l.to_zsl(), r.to_zsl()),
            E::Lt(l, r) => format!("({} < {})", l.to_zsl(), r.to_zsl()),
            E::Eq(l, r) => format!("({} == {})", l.to_zsl(), r.to_zsl()),
        }
    }

    /// Direct evaluation over i128 (wide enough for depth-4 products of
    /// 8-bit values).
    fn eval(&self, a: i128, b: i128) -> i128 {
        match self {
            E::A => a,
            E::B => b,
            E::Const(c) => *c as i128,
            E::Add(l, r) => l.eval(a, b) + r.eval(a, b),
            E::Sub(l, r) => l.eval(a, b) - r.eval(a, b),
            E::Mul(l, r) => l.eval(a, b) * r.eval(a, b),
            E::Lt(l, r) => i128::from(l.eval(a, b) < r.eval(a, b)),
            E::Eq(l, r) => i128::from(l.eval(a, b) == r.eval(a, b)),
        }
    }

    /// Magnitude bound used to keep comparisons inside the gadget width.
    fn bound(&self) -> i128 {
        match self {
            E::A | E::B => 127,
            E::Const(_) => 127,
            E::Add(l, r) | E::Sub(l, r) => l.bound() + r.bound(),
            E::Mul(l, r) => l.bound() * r.bound(),
            E::Lt(_, _) | E::Eq(_, _) => 1,
        }
    }
}

fn arb_expr() -> impl Strategy<Value = E> {
    let leaf = prop_oneof![
        Just(E::A),
        Just(E::B),
        any::<i8>().prop_map(E::Const),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(l, r)| E::Add(Box::new(l), Box::new(r))),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| E::Sub(Box::new(l), Box::new(r))),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| E::Mul(Box::new(l), Box::new(r))),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| E::Lt(Box::new(l), Box::new(r))),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| E::Eq(Box::new(l), Box::new(r))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random expressions compile, solve, satisfy their constraints, and
    /// equal direct evaluation — in both compiler modes.
    #[test]
    fn compiled_expressions_match_direct_evaluation(
        e in arb_expr(),
        a in -100i64..100,
        b in -100i64..100,
    ) {
        // Comparisons inside need |lhs − rhs| < 2^width; bound crudely.
        prop_assume!(e.bound() < (1 << 40));
        let src = format!("input a; input b; output y; y = {};", e.to_zsl());
        let expect = e.eval(a as i128, b as i128);
        for opts in [CompileOptions { width: 44, materialize: true, ..CompileOptions::default() },
                     CompileOptions { width: 44, materialize: false, ..CompileOptions::default() }] {
            let compiled = compile::<F61>(&src, &opts).expect("compiles");
            let ins = vec![F61::from_i64(a), F61::from_i64(b)];
            let asg = compiled.solver.solve(&ins).expect("solves");
            prop_assert!(compiled.ginger.is_satisfied(&asg));
            let y = decode_i64(asg.extract(compiled.solver.outputs())[0]).expect("small");
            prop_assert_eq!(y as i128, expect, "{}", src);
        }
    }

    /// The §4 transform preserves (un)satisfiability on random circuits.
    #[test]
    fn transform_preserves_satisfiability(
        e in arb_expr(),
        a in -50i64..50,
        b in -50i64..50,
        corrupt in any::<bool>(),
    ) {
        prop_assume!(e.bound() < (1 << 40));
        let src = format!("input a; input b; output y; y = {};", e.to_zsl());
        let opts = CompileOptions { width: 44, materialize: true, ..CompileOptions::default() };
        let compiled = compile::<F61>(&src, &opts).expect("compiles");
        let ins = vec![F61::from_i64(a), F61::from_i64(b)];
        let mut asg = compiled.solver.solve(&ins).expect("solves");
        if corrupt {
            let out = compiled.solver.outputs()[0];
            asg.set(out, asg.get(out) + F61::ONE);
        }
        let sat_g = compiled.ginger.is_satisfied(&asg);
        for t in [ginger_to_quad(&compiled.ginger), ginger_to_quad_optimized(&compiled.ginger)] {
            let ext = t.extend_assignment(&asg);
            prop_assert_eq!(t.system.is_satisfied(&ext), sat_g);
        }
        let lin = linearize_io(&compiled.ginger);
        prop_assert_eq!(lin.system.is_satisfied(&lin.extend_assignment(&asg)), sat_g);
    }

    /// Fig. 3's size relations hold for arbitrary compiled circuits.
    #[test]
    fn size_relations_hold(e in arb_expr()) {
        let src = format!("input a; input b; output y; y = {};", e.to_zsl());
        let opts = CompileOptions { width: 44, materialize: true, ..CompileOptions::default() };
        let compiled = compile::<F61>(&src, &opts).expect("compiles");
        let g = ginger_stats(&compiled.ginger);
        let t = ginger_to_quad(&compiled.ginger);
        let z = zaatar_cc::quad_stats(&t.system);
        prop_assert_eq!(z.num_unbound, g.num_unbound + g.k2_distinct);
        prop_assert_eq!(z.num_constraints, g.num_constraints + g.k2_distinct);
        prop_assert_eq!(t.k2(), g.k2_distinct);
    }

    /// The comparison gadget agrees with native `<` across its full
    /// contracted range.
    #[test]
    fn less_than_gadget_is_correct(a in -(1i64 << 20)..(1i64 << 20), b in -(1i64 << 20)..(1i64 << 20)) {
        let mut builder = Builder::<F61>::new();
        let x = builder.alloc_input();
        let y = builder.alloc_input();
        let lt = builder.less_than(&x, &y, 22);
        builder.bind_output(&lt);
        let (sys, solver) = builder.finish();
        let asg = solver.solve(&[F61::from_i64(a), F61::from_i64(b)]).unwrap();
        prop_assert!(sys.is_satisfied(&asg));
        let got = asg.extract(solver.outputs())[0];
        prop_assert_eq!(got, F61::from_u64(u64::from(a < b)));
    }

    /// `is_eq` / `is_nonzero` agree with native equality.
    #[test]
    fn equality_gadget_is_correct(a in any::<i32>(), b in any::<i32>()) {
        let mut builder = Builder::<F61>::new();
        let x = builder.alloc_input();
        let y = builder.alloc_input();
        let eq = builder.is_eq(&x, &y);
        builder.bind_output(&eq);
        let (sys, solver) = builder.finish();
        let asg = solver
            .solve(&[F61::from_i64(a as i64), F61::from_i64(b as i64)])
            .unwrap();
        prop_assert!(sys.is_satisfied(&asg));
        prop_assert_eq!(
            asg.extract(solver.outputs())[0],
            F61::from_u64(u64::from(a == b))
        );
    }

    /// Bit decomposition round-trips arbitrary values in range.
    #[test]
    fn bit_decompose_recomposes(v in 0u64..(1 << 48)) {
        let mut builder = Builder::<F61>::new();
        let x = builder.alloc_input();
        let bits = builder.bit_decompose(&x, 48);
        let (sys, solver) = builder.finish();
        let asg = solver.solve(&[F61::from_u64(v)]).unwrap();
        prop_assert!(sys.is_satisfied(&asg));
        let mut recomposed = 0u64;
        for (i, bit) in bits.iter().enumerate() {
            let val = bit.eval(&asg);
            prop_assert!(val == F61::ZERO || val == F61::ONE);
            if val == F61::ONE {
                recomposed |= 1 << i;
            }
        }
        prop_assert_eq!(recomposed, v);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The pretty-printer round-trips random expression programs.
    #[test]
    fn formatter_round_trips(e in arb_expr()) {
        use zaatar_cc::lang::{format_program, parse};
        let src = format!("input a; input b; output y; y = {};", e.to_zsl());
        let ast1 = parse(&src).expect("parses");
        let printed = format_program(&ast1);
        let ast2 = parse(&printed)
            .unwrap_or_else(|err| panic!("reparse failed: {err}\n{printed}"));
        prop_assert_eq!(ast1, ast2);
    }
}
