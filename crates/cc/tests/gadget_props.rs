//! SplitMix64-seeded property tests for the u32 gadget library: each
//! bitwise gadget must agree with the corresponding native Rust
//! operator over a thousand random inputs (one circuit, a thousand
//! solves), and the booleanity constraints must refuse tampered bit
//! witnesses — both a flipped bit (breaks recomposition) and a
//! non-boolean bit value (breaks `b·(b−1) = 0`).

use zaatar_cc::{Builder, U32Word, VarId};
use zaatar_field::testutil::SplitMix64;
use zaatar_field::{Field, F61};

const CASES: usize = 1_000;

/// Builds `y = op(a, b)` once, then solves `CASES` random input pairs
/// and compares the circuit's output word against `native`.
fn check_binary_op(
    name: &str,
    seed: u64,
    op: impl Fn(&mut Builder<F61>, &U32Word<F61>, &U32Word<F61>) -> U32Word<F61>,
    native: impl Fn(u32, u32) -> u32,
) {
    let mut bld = Builder::<F61>::new();
    let a = bld.u32_input();
    let b = bld.u32_input();
    let out = op(&mut bld, &a, &b);
    let out_lc = out.to_lc();
    bld.bind_output(&out_lc);
    let (sys, solver) = bld.finish();

    let mut rng = SplitMix64::new(seed);
    for case in 0..CASES {
        let x = rng.next_u64() as u32;
        let y = rng.next_u64() as u32;
        let asg = solver
            .solve(&[F61::from_u64(u64::from(x)), F61::from_u64(u64::from(y))])
            .unwrap_or_else(|e| panic!("{name} case {case}: {e}"));
        assert!(sys.is_satisfied(&asg), "{name} case {case}");
        assert_eq!(
            asg.extract(solver.outputs())[0],
            F61::from_u64(u64::from(native(x, y))),
            "{name}: {x:#010x} . {y:#010x} (case {case})"
        );
    }
}

#[test]
fn u32_and_matches_native() {
    check_binary_op("and", 0xa17d, |b, x, y| b.u32_and(x, y), |x, y| x & y);
}

#[test]
fn u32_xor_matches_native() {
    check_binary_op("xor", 0x0e4e, |b, x, y| b.u32_xor(x, y), |x, y| x ^ y);
}

#[test]
fn u32_or_matches_native() {
    check_binary_op("or", 0x0a4e, |b, x, y| b.u32_or(x, y), |x, y| x | y);
}

/// All 32 rotation amounts at once: rotations are free bit
/// permutations, so one circuit exposes every `rotl k` as an output.
#[test]
fn u32_rotl_matches_native_for_all_amounts() {
    let mut bld = Builder::<F61>::new();
    let a = bld.u32_input();
    for k in 0..32 {
        let lc = a.rotl(k).to_lc();
        bld.bind_output(&lc);
    }
    let (sys, solver) = bld.finish();

    let mut rng = SplitMix64::new(0x4074);
    for case in 0..CASES {
        let x = rng.next_u64() as u32;
        let asg = solver
            .solve(&[F61::from_u64(u64::from(x))])
            .unwrap_or_else(|e| panic!("case {case}: {e}"));
        assert!(sys.is_satisfied(&asg), "case {case}");
        let outs = asg.extract(solver.outputs());
        for (k, got) in outs.iter().enumerate() {
            assert_eq!(
                *got,
                F61::from_u64(u64::from(x.rotate_left(k as u32))),
                "rotl {k} of {x:#010x} (case {case})"
            );
        }
    }
}

/// Tampering with a solved bit witness must always be caught: flipping
/// a bit keeps booleanity but breaks the recomposition sum; writing a
/// non-boolean value breaks `b·(b−1) = 0` directly.
#[test]
fn booleanity_rejects_tampered_bit_witness() {
    let mut bld = Builder::<F61>::new();
    let a = bld.u32_input();
    let a_lc = a.to_lc();
    bld.bind_output(&a_lc);
    let bit_vars: Vec<VarId> = (0..32).map(|i| a.bit(i).terms()[0].0).collect();
    let (sys, solver) = bld.finish();

    let mut rng = SplitMix64::new(0xb001);
    for case in 0..128 {
        let x = rng.next_u64() as u32;
        let honest = solver.solve(&[F61::from_u64(u64::from(x))]).unwrap();
        assert!(sys.is_satisfied(&honest), "case {case}");

        let i = rng.range_u64(0, 32) as usize;
        let mut flipped = honest.clone();
        flipped.set(bit_vars[i], F61::ONE - flipped.get(bit_vars[i]));
        assert!(
            !sys.is_satisfied(&flipped),
            "flipped bit {i} of {x:#010x} accepted (case {case})"
        );

        let mut nonbool = honest.clone();
        nonbool.set(bit_vars[i], F61::from_u64(2));
        assert!(
            !sys.is_satisfied(&nonbool),
            "non-boolean bit {i} of {x:#010x} accepted (case {case})"
        );
    }
}
