//! Unit tests for the constraint optimizer's cross-enforced-definition
//! handling, promoted from the in-module repro of the CSE cycle: when
//! two auxiliary variables are each *defined twice* with mirrored
//! right-hand sides (`w = x·y` and `w = a·b`, `v = a·b` and `v = x·y`),
//! the alias chains form a cycle (`w ↦ v ↦ w`) that the substitution
//! table must break rather than loop on. These tests pin termination,
//! semantic preservation through `map_assignment`, and the fixpoint
//! property (`optimize ∘ optimize = optimize`) over randomly generated
//! circuits — driven by the same in-tree deterministic generator the
//! compiler proptests use (no external proptest dependency).

use zaatar_cc::ir::{Assignment, LinComb};
use zaatar_cc::{optimize, Builder};
use zaatar_field::{Field, F61};

/// Deterministic splitmix64 generator standing in for proptest.
struct Gen(u64);

impl Gen {
    fn new(seed: u64) -> Self {
        Gen(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// The cycle scenario: each aux defined twice with mirrored RHS, so
/// naive alias-chasing would chase `w ↦ v ↦ w` forever.
fn cross_enforced_system() -> (zaatar_cc::GingerSystem<F61>, zaatar_cc::builder::WitnessSolver<F61>)
{
    let mut b = Builder::<F61>::new();
    let x = b.alloc_input();
    let y = b.alloc_input();
    let a = b.alloc_input();
    let bb = b.alloc_input();
    let w = b.mul(&x, &y);
    let v = b.mul(&a, &bb);
    b.enforce_product(&a, &bb, &w);
    b.enforce_product(&x, &y, &v);
    b.bind_output(&w.add(&v));
    b.finish()
}

#[test]
fn cross_enforced_products_terminate_and_shrink() {
    let (sys, _solver) = cross_enforced_system();
    // Terminating at all is the headline property (the substitution
    // cycle used to be an infinite loop risk); not growing is the
    // optimizer's basic contract.
    let opt = optimize(&sys);
    assert!(opt.system.constraints.len() <= sys.constraints.len());
    assert!(
        opt.report.cse_hits >= 1,
        "mirrored definitions are exactly what CSE dedups: {:?}",
        opt.report
    );
}

#[test]
fn cross_enforced_products_preserve_semantics() {
    let (sys, solver) = cross_enforced_system();
    let opt = optimize(&sys);
    // The cross-enforcement makes the system satisfiable only when
    // x·y == a·b; the solver's assignment for such inputs must map to
    // a satisfying assignment of the optimized system...
    let good: Vec<F61> = [3u64, 7, 7, 3].iter().map(|&v| F61::from_u64(v)).collect();
    let asg = solver.solve(&good).expect("x·y == a·b solves");
    assert!(sys.is_satisfied(&asg));
    assert!(
        opt.system.is_satisfied(&opt.map_assignment(&asg)),
        "optimization broke a satisfying assignment"
    );
    // ...and an assignment violating the cross-constraints must stay
    // rejected (the dedup may not erase the x·y == a·b requirement).
    let bad: Vec<F61> = [3u64, 7, 5, 11].iter().map(|&v| F61::from_u64(v)).collect();
    if let Ok(asg) = solver.solve(&bad) {
        assert!(!sys.is_satisfied(&asg));
        assert!(
            !opt.system.is_satisfied(&opt.map_assignment(&asg)),
            "optimization must not make an unsat system satisfiable"
        );
    }
}

#[test]
fn cross_enforced_outputs_survive_the_var_map() {
    let (sys, _solver) = cross_enforced_system();
    let opt = optimize(&sys);
    // map_vars panics if an input/output was pruned; both lists must
    // transport even though the aux vars behind them got deduped.
    let inputs = sys.vars.of_kind(zaatar_cc::ir::Kind::Input);
    let outputs = sys.vars.of_kind(zaatar_cc::ir::Kind::Output);
    let mapped_in = opt.map_vars(&inputs);
    let mapped_out = opt.map_vars(&outputs);
    assert_eq!(mapped_in.len(), inputs.len());
    assert_eq!(mapped_out.len(), outputs.len());
}

/// Builds a random circuit over `n_inputs` inputs: a pool of linear
/// combinations grown by random add/sub/mul/scale steps, with a random
/// subset of product pairs re-enforced a second time (the duplicate-
/// definition pattern that feeds CSE and, when mirrored, the cycle
/// breaker).
fn random_circuit(
    gen: &mut Gen,
    n_inputs: usize,
    steps: usize,
) -> (zaatar_cc::GingerSystem<F61>, zaatar_cc::builder::WitnessSolver<F61>) {
    let mut b = Builder::<F61>::new();
    let mut pool: Vec<LinComb<F61>> = b.alloc_inputs(n_inputs);
    let mut products: Vec<(LinComb<F61>, LinComb<F61>, LinComb<F61>)> = Vec::new();
    for _ in 0..steps {
        let i = gen.below(pool.len());
        let j = gen.below(pool.len());
        let (lhs, rhs) = (pool[i].clone(), pool[j].clone());
        let next = match gen.below(4) {
            0 => lhs.add(&rhs),
            1 => lhs.sub(&rhs),
            2 => lhs.scale(F61::from_u64(1 + gen.next_u64() % 7)),
            _ => {
                let p = b.mul(&lhs, &rhs);
                products.push((lhs, rhs, p.clone()));
                p
            }
        };
        pool.push(next);
    }
    // Re-enforce a random half of the recorded products: duplicate
    // definitions of already-defined aux vars.
    for (lhs, rhs, p) in &products {
        if gen.below(2) == 0 {
            b.enforce_product(lhs, rhs, p);
        }
    }
    let out = pool.last().expect("pool starts non-empty").clone();
    b.bind_output(&out);
    b.finish()
}

#[test]
fn optimize_preserves_satisfiability_on_random_circuits() {
    for seed in 0..24u64 {
        let mut gen = Gen::new(seed);
        let (sys, solver) = random_circuit(&mut gen, 3, 12);
        let ins: Vec<F61> = (0..3).map(|_| F61::from_u64(gen.next_u64() % 1000)).collect();
        let asg: Assignment<F61> = solver.solve(&ins).expect("random circuit solves");
        assert!(sys.is_satisfied(&asg), "seed {seed}: solver output unsat");
        let opt = optimize(&sys);
        assert!(
            opt.system.is_satisfied(&opt.map_assignment(&asg)),
            "seed {seed}: optimization broke the witness ({:?})",
            opt.report
        );
    }
}

#[test]
fn optimize_is_a_fixpoint_on_random_circuits() {
    for seed in 0..24u64 {
        let mut gen = Gen::new(seed);
        let (sys, _solver) = random_circuit(&mut gen, 3, 12);
        let once = optimize(&sys);
        let twice = optimize(&once.system);
        assert_eq!(
            twice.system.constraints.len(),
            once.system.constraints.len(),
            "seed {seed}: second pass changed the constraint count"
        );
        assert_eq!(
            twice.system.vars.len(),
            once.system.vars.len(),
            "seed {seed}: second pass changed the variable count"
        );
        assert_eq!(twice.report.folded, 0, "seed {seed}: {:?}", twice.report);
        assert_eq!(twice.report.cse_hits, 0, "seed {seed}: {:?}", twice.report);
        assert_eq!(twice.report.pruned_vars, 0, "seed {seed}: {:?}", twice.report);
    }
}
