//! Property-style tests for the multiprecision and group substrates,
//! driven by the workspace's shared deterministic generator
//! (`zaatar_field::testutil::SplitMix64` — the build must work offline,
//! so no external proptest dependency).

use zaatar_crypto::mp::MontCtx;
use zaatar_crypto::{ChaChaPrg, ElGamal, HasGroup, KeyPair};
use zaatar_field::testutil::SplitMix64;
use zaatar_field::{Field, PrimeField, F61};

/// The Mersenne prime 2^127 − 1 gives an exact u128 reference.
const P: u128 = (1 << 127) - 1;

fn u128_below(gen: &mut SplitMix64, bound: u128) -> u128 {
    let raw = (u128::from(gen.next_u64()) << 64) | u128::from(gen.next_u64());
    raw % bound
}

fn words(x: u128) -> Vec<u64> {
    vec![x as u64, (x >> 64) as u64]
}

/// Reference multiplication mod 2^127 − 1 via 256-bit folding.
fn mulmod(a: u128, b: u128) -> u128 {
    let (a0, a1) = (a & u64::MAX as u128, a >> 64);
    let (b0, b1) = (b & u64::MAX as u128, b >> 64);
    let ll = a0 * b0;
    let m1 = a0 * b1;
    let m2 = a1 * b0;
    let hh = a1 * b1;
    let s1 = ll.wrapping_add(m1 << 64);
    let c1 = u128::from(s1 < ll);
    let lo = s1.wrapping_add(m2 << 64);
    let c2 = u128::from(lo < s1);
    let hi = hh + (m1 >> 64) + (m2 >> 64) + c1 + c2;
    // value = hi·2^128 + lo; 2^127 ≡ 1 → 2^128 ≡ 2.
    ((lo & P) + (lo >> 127) + 2 * (hi % P)) % P
}

/// Montgomery multiplication matches the u128 reference.
#[test]
fn mont_mul_matches_reference() {
    let ctx = MontCtx::new(words(P));
    let mut g = SplitMix64::new(1);
    for _ in 0..64 {
        let a = u128_below(&mut g, P);
        let b = u128_below(&mut g, P);
        let am = ctx.to_mont(&words(a));
        let bm = ctx.to_mont(&words(b));
        let got = ctx.from_mont(&ctx.mont_mul(&am, &bm));
        assert_eq!(got, words(mulmod(a, b)));
    }
}

/// Fermat's little theorem via modexp.
#[test]
fn fermat_holds() {
    let ctx = MontCtx::new(words(P));
    let exp = words(P - 1);
    let mut g = SplitMix64::new(2);
    for _ in 0..16 {
        let a = 1 + u128_below(&mut g, P - 1);
        assert_eq!(ctx.pow(&words(a), &exp), words(1));
    }
}

/// Exponent laws in the Schnorr group: g^(a+b) = g^a·g^b and
/// (g^a)^b = g^(a·b), with field arithmetic on exponents.
#[test]
fn group_exponent_laws() {
    let g = F61::group();
    let mut gen = SplitMix64::new(3);
    for _ in 0..32 {
        let (fa, fb): (F61, F61) = (gen.field(), gen.field());
        let ga = g.gen_pow(&fa.exponent_words());
        let gb = g.gen_pow(&fb.exponent_words());
        assert_eq!(g.mul(&ga, &gb), g.gen_pow(&(fa + fb).exponent_words()));
        assert_eq!(
            g.pow(&ga, &fb.exponent_words()),
            g.gen_pow(&(fa * fb).exponent_words())
        );
    }
}

/// Fixed-base windowed exponentiation agrees with naive
/// square-and-multiply on random exponents, for both the generator's
/// interned table and a freshly built table over a random base.
#[test]
fn fixed_base_matches_naive_on_random_exponents() {
    let g = F61::group();
    let gen_table = g.generator_table();
    let mut gen = SplitMix64::new(7);
    for _ in 0..48 {
        let e = gen.field::<F61>().to_canonical_words();
        assert_eq!(g.pow_fixed(gen_table, &e), g.pow(&g.generator(), &e));
    }
    let base = g.gen_pow(&[gen.next_u64()]);
    let table = g.fixed_base_table(&base);
    for _ in 0..24 {
        let e = gen.field::<F61>().to_canonical_words();
        assert_eq!(g.pow_fixed(&table, &e), g.pow(&base, &e));
    }
}

/// Fixed-base edge exponents: 0, 1, and order − 1 (the empty-window,
/// single-window, and every-window-saturated cases).
#[test]
fn fixed_base_edge_exponents() {
    let g = F61::group();
    let mut gen = SplitMix64::new(8);
    for _ in 0..4 {
        let base = g.gen_pow(&[gen.next_u64() | 1]);
        let table = g.fixed_base_table(&base);
        assert_eq!(g.pow_fixed(&table, &[0]), g.identity());
        assert_eq!(g.pow_fixed(&table, &[1]), base);
        let mut order_m1 = g.order().to_vec();
        order_m1[0] -= 1; // The order is an odd prime: no borrow.
        assert_eq!(g.pow_fixed(&table, &order_m1), g.pow(&base, &order_m1));
        // order − 1 is −1 in the exponent group, so multiplying by the
        // base lands back on the identity.
        assert_eq!(g.mul(&g.pow_fixed(&table, &order_m1), &base), g.identity());
    }
}

/// Exponents wider than the table's coverage take the fallback path
/// and still agree with the generic routine.
#[test]
fn fixed_base_oversized_exponents_fall_back() {
    let g = F61::group();
    let table = g.generator_table();
    let mut gen = SplitMix64::new(9);
    for extra in 1..4usize {
        let e: Vec<u64> = (0..(table.capacity_bits() / 64 + extra))
            .map(|_| gen.next_u64() | 1)
            .collect();
        assert_eq!(g.pow_fixed(table, &e), g.pow(&g.generator(), &e));
    }
}

/// ElGamal: Dec(Enc(m)) = g^m and the homomorphisms hold for random
/// messages and scalars.
#[test]
fn elgamal_homomorphisms() {
    let mut gen = SplitMix64::new(4);
    for _ in 0..24 {
        let mut prg = ChaChaPrg::from_u64_seed(gen.next_u64());
        let kp = KeyPair::<F61>::generate(&mut prg);
        let m1: F61 = gen.field();
        let m2: F61 = gen.field();
        let c: F61 = gen.field();
        let ct1 = ElGamal::<F61>::encrypt(kp.public(), m1, &mut prg);
        let ct2 = ElGamal::<F61>::encrypt(kp.public(), m2, &mut prg);
        assert_eq!(
            ElGamal::<F61>::decrypt_to_group(&kp, &ct1),
            ElGamal::<F61>::encode(m1)
        );
        let sum = ElGamal::<F61>::add(&ct1, &ct2);
        assert_eq!(
            ElGamal::<F61>::decrypt_to_group(&kp, &sum),
            ElGamal::<F61>::encode(m1 + m2)
        );
        let scaled = ElGamal::<F61>::scale(&ct1, c);
        assert_eq!(
            ElGamal::<F61>::decrypt_to_group(&kp, &scaled),
            ElGamal::<F61>::encode(m1 * c)
        );
    }
}

/// ElGamal vector encryption (the fixed-base batch path) round-trips
/// element-wise and preserves the inner-product homomorphism the
/// commitment protocol relies on.
#[test]
fn elgamal_vector_round_trip_and_inner_product() {
    let mut gen = SplitMix64::new(10);
    for trial in 0..8 {
        let mut prg = ChaChaPrg::from_u64_seed(gen.next_u64());
        let kp = KeyPair::<F61>::generate(&mut prg);
        // Lengths straddle the fixed-base batching threshold.
        let n = 1 + (trial % 8);
        let r: Vec<F61> = gen.field_vec(n);
        let u: Vec<F61> = gen.field_vec(n);
        let cts = ElGamal::<F61>::encrypt_vec(kp.public(), &r, &mut prg);
        for (ct, m) in cts.iter().zip(&r) {
            assert_eq!(
                ElGamal::<F61>::decrypt_to_group(&kp, ct),
                ElGamal::<F61>::encode(*m)
            );
        }
        let ip = ElGamal::<F61>::inner_product(&cts, &u);
        let expect: F61 = r.iter().zip(&u).map(|(a, b)| *a * *b).sum();
        assert_eq!(
            ElGamal::<F61>::decrypt_to_group(&kp, &ip),
            ElGamal::<F61>::encode(expect)
        );
    }
}

/// `mont_sqr` is a specialization of `mont_mul(a, a)` — they must agree
/// bit-for-bit on every input. Runs at the 2-word test prime and at a
/// full 16-word (1024-bit) width, across seeds, random residues, and
/// edge values (0, raw 1, m − 1, all-ones top words).
#[test]
fn mont_sqr_matches_mont_mul_self_across_widths() {
    // Any odd modulus is a valid Montgomery modulus, and the property
    // is differential, so a deterministic pseudorandom 1024-bit odd
    // modulus exercises the wide path as well as a prime would.
    let mut mgen = SplitMix64::new(0x5a5a);
    let mut wide_m: Vec<u64> = (0..16).map(|_| mgen.next_u64()).collect();
    wide_m[0] |= 1; // odd
    wide_m[15] |= 1 << 63; // full 1024-bit width
    let widths: Vec<(&str, Vec<u64>)> = vec![
        ("test-prime-127", words(P)),
        ("wide-1024", wide_m),
    ];
    for (name, modulus) in widths {
        let ctx = MontCtx::new(modulus.clone());
        let n = modulus.len();
        let mut edge_max = modulus.clone();
        edge_max[0] -= 1; // m − 1 (m is odd: no borrow)
        let mut one = vec![0u64; n];
        one[0] = 1;
        let mut cases: Vec<Vec<u64>> = vec![vec![0u64; n], one, edge_max];
        for seed in [11u64, 12, 13] {
            let mut g = SplitMix64::new(seed);
            for _ in 0..24 {
                // Top word halved keeps the draw below the modulus
                // (whose top bit is set in both widths).
                let mut a: Vec<u64> = (0..n).map(|_| g.next_u64()).collect();
                a[n - 1] >>= 1;
                cases.push(a);
            }
        }
        // Saturated low words, small top word: maximal carry traffic in
        // the doubled cross-term pass.
        let mut sat = vec![u64::MAX; n];
        sat[n - 1] = 1;
        cases.push(sat);
        for a in &cases {
            assert_eq!(ctx.mont_sqr(a), ctx.mont_mul(a, a), "width={name}");
        }
    }
}

/// The bucket MSM agrees with the per-element reference inner product
/// at both group widths (256-bit F61-paired, 1024-bit F128-paired),
/// across seeds and the window-boundary lengths {0, 1, 2, 255, 256,
/// 257}, with adversarial shapes mixed in: zero scalars, duplicate
/// bases, and max-word (above-the-order) exponents.
#[test]
fn msm_matches_reference_across_widths_and_lengths() {
    fn check<F: HasGroup>(seed: u64, lens: &[usize]) {
        let g = F::group();
        let mut gen = SplitMix64::new(seed);
        for &n in lens {
            let mut bases: Vec<zaatar_crypto::GroupElem> = Vec::with_capacity(n);
            let mut scalars: Vec<Vec<u64>> = Vec::with_capacity(n);
            for i in 0..n {
                // Small exponents keep base construction cheap; every
                // fourth base duplicates its predecessor.
                if i % 4 == 3 {
                    bases.push(bases[i - 1].clone());
                } else {
                    bases.push(g.gen_pow(&[gen.next_u64() >> 32]));
                }
                scalars.push(match i % 5 {
                    // Zero scalars (both narrow and full-width zeros).
                    0 => vec![0],
                    1 => vec![0, 0],
                    // Max-word exponent: above the subgroup order.
                    2 => vec![u64::MAX, u64::MAX],
                    _ => vec![gen.next_u64(), gen.next_u64() >> 8],
                });
            }
            let refs: Vec<&[u64]> = scalars.iter().map(|s| s.as_slice()).collect();
            let got = g.msm(&bases, &refs);
            let mut expect = g.identity();
            for (b, s) in bases.iter().zip(refs.iter()) {
                expect = g.mul(&expect, &g.pow(b, s));
            }
            assert_eq!(got, expect, "seed={seed} n={n}");
        }
    }
    // Narrow group: every window-boundary length, several seeds.
    for seed in [21u64, 22, 23] {
        check::<F61>(seed, &[0, 1, 2, 255, 256, 257]);
    }
    // Wide (1024-bit) group: the same boundaries, one seed (the naive
    // reference is ~100× costlier per element here).
    check::<zaatar_field::F128>(31, &[0, 1, 2, 255, 256, 257]);
}

/// The MSM-backed `inner_product` agrees with the retained naive path
/// on the ciphertexts the commitment actually feeds it, including zero
/// scalars and both sides of the window-width schedule.
#[test]
fn elgamal_inner_product_matches_naive() {
    let mut gen = SplitMix64::new(0x1234);
    for &n in &[0usize, 1, 2, 17, 64] {
        let mut prg = ChaChaPrg::from_u64_seed(gen.next_u64());
        let kp = KeyPair::<F61>::generate(&mut prg);
        let r: Vec<F61> = gen.field_vec(n);
        let mut u: Vec<F61> = gen.field_vec(n);
        for i in (0..n).step_by(3) {
            u[i] = F61::ZERO;
        }
        let cts = ElGamal::<F61>::encrypt_vec(kp.public(), &r, &mut prg);
        assert_eq!(
            ElGamal::<F61>::inner_product(&cts, &u),
            ElGamal::<F61>::inner_product_naive(&cts, &u),
            "n={n}"
        );
    }
}

/// Group element serialization round-trips.
#[test]
fn group_serialization_round_trips() {
    let g = F61::group();
    let mut gen = SplitMix64::new(5);
    for _ in 0..64 {
        let x = g.gen_pow(&[gen.next_u64()]);
        let bytes = g.elem_to_bytes(&x);
        assert_eq!(bytes.len(), g.elem_bytes());
        assert_eq!(g.elem_from_bytes(&bytes), Some(x));
    }
}

/// ChaCha stream determinism.
#[test]
fn chacha_determinism() {
    let mut gen = SplitMix64::new(6);
    for _ in 0..32 {
        let seed = gen.next_u64();
        let n = 1 + (gen.next_u64() as usize % 63);
        let mut a = ChaChaPrg::from_u64_seed(seed);
        let mut b = ChaChaPrg::from_u64_seed(seed);
        let xs: Vec<u64> = (0..n).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..n).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
    }
}
