//! Property tests for the multiprecision and group substrates.

use proptest::prelude::*;
use zaatar_crypto::mp::MontCtx;
use zaatar_crypto::{ChaChaPrg, ElGamal, HasGroup, KeyPair};
use zaatar_field::{Field, F61};

/// The Mersenne prime 2^127 − 1 gives an exact u128 reference.
const P: u128 = (1 << 127) - 1;

fn words(x: u128) -> Vec<u64> {
    vec![x as u64, (x >> 64) as u64]
}

/// Reference multiplication mod 2^127 − 1 via 256-bit folding.
fn mulmod(a: u128, b: u128) -> u128 {
    let (a0, a1) = (a & u64::MAX as u128, a >> 64);
    let (b0, b1) = (b & u64::MAX as u128, b >> 64);
    let ll = a0 * b0;
    let m1 = a0 * b1;
    let m2 = a1 * b0;
    let hh = a1 * b1;
    let s1 = ll.wrapping_add(m1 << 64);
    let c1 = u128::from(s1 < ll);
    let lo = s1.wrapping_add(m2 << 64);
    let c2 = u128::from(lo < s1);
    let hi = hh + (m1 >> 64) + (m2 >> 64) + c1 + c2;
    // value = hi·2^128 + lo; 2^127 ≡ 1 → 2^128 ≡ 2.
    ((lo & P) + (lo >> 127) + 2 * (hi % P)) % P
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Montgomery multiplication matches the u128 reference.
    #[test]
    fn mont_mul_matches_reference(a in 0u128..P, b in 0u128..P) {
        let ctx = MontCtx::new(words(P));
        let am = ctx.to_mont(&words(a));
        let bm = ctx.to_mont(&words(b));
        let got = ctx.from_mont(&ctx.mont_mul(&am, &bm));
        prop_assert_eq!(got, words(mulmod(a, b)));
    }

    /// Fermat's little theorem via modexp.
    #[test]
    fn fermat_holds(a in 1u128..P) {
        let ctx = MontCtx::new(words(P));
        let exp = words(P - 1);
        prop_assert_eq!(ctx.pow(&words(a), &exp), words(1));
    }

    /// Exponent laws in the Schnorr group: g^(a+b) = g^a·g^b and
    /// (g^a)^b = g^(a·b), with field arithmetic on exponents.
    #[test]
    fn group_exponent_laws(a in any::<u64>(), b in any::<u64>()) {
        let g = F61::group();
        let (fa, fb) = (F61::from_u64(a), F61::from_u64(b));
        let ga = g.gen_pow(&fa.exponent_words());
        let gb = g.gen_pow(&fb.exponent_words());
        prop_assert_eq!(
            g.mul(&ga, &gb),
            g.gen_pow(&(fa + fb).exponent_words())
        );
        prop_assert_eq!(
            g.pow(&ga, &fb.exponent_words()),
            g.gen_pow(&(fa * fb).exponent_words())
        );
    }

    /// ElGamal: Dec(Enc(m)) = g^m and the homomorphisms hold for random
    /// messages and scalars.
    #[test]
    fn elgamal_homomorphisms(m1 in any::<u64>(), m2 in any::<u64>(), c in any::<u64>(), seed in any::<u64>()) {
        let mut prg = ChaChaPrg::from_u64_seed(seed);
        let kp = KeyPair::<F61>::generate(&mut prg);
        let (m1, m2, c) = (F61::from_u64(m1), F61::from_u64(m2), F61::from_u64(c));
        let ct1 = ElGamal::<F61>::encrypt(kp.public(), m1, &mut prg);
        let ct2 = ElGamal::<F61>::encrypt(kp.public(), m2, &mut prg);
        prop_assert_eq!(ElGamal::<F61>::decrypt_to_group(&kp, &ct1), ElGamal::<F61>::encode(m1));
        let sum = ElGamal::<F61>::add(&ct1, &ct2);
        prop_assert_eq!(ElGamal::<F61>::decrypt_to_group(&kp, &sum), ElGamal::<F61>::encode(m1 + m2));
        let scaled = ElGamal::<F61>::scale(&ct1, c);
        prop_assert_eq!(ElGamal::<F61>::decrypt_to_group(&kp, &scaled), ElGamal::<F61>::encode(m1 * c));
    }

    /// Group element serialization round-trips.
    #[test]
    fn group_serialization_round_trips(e in any::<u64>()) {
        let g = F61::group();
        let x = g.gen_pow(&[e]);
        let bytes = g.elem_to_bytes(&x);
        prop_assert_eq!(bytes.len(), g.elem_bytes());
        prop_assert_eq!(g.elem_from_bytes(&bytes), Some(x));
    }

    /// ChaCha stream determinism.
    #[test]
    fn chacha_determinism(seed in any::<u64>(), n in 1usize..64) {
        let mut a = ChaChaPrg::from_u64_seed(seed);
        let mut b = ChaChaPrg::from_u64_seed(seed);
        let xs: Vec<u64> = (0..n).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..n).map(|_| b.next_u64()).collect();
        prop_assert_eq!(xs, ys);
    }
}
