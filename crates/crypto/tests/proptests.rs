//! Property-style tests for the multiprecision and group substrates,
//! driven by a small in-tree deterministic generator (the build must
//! work offline, so no external proptest dependency).

use zaatar_crypto::mp::MontCtx;
use zaatar_crypto::{ChaChaPrg, ElGamal, HasGroup, KeyPair};
use zaatar_field::{Field, F61};

/// The Mersenne prime 2^127 − 1 gives an exact u128 reference.
const P: u128 = (1 << 127) - 1;

/// Deterministic splitmix64 generator standing in for proptest.
struct Gen(u64);

impl Gen {
    fn new(seed: u64) -> Self {
        Gen(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn u128_below(&mut self, bound: u128) -> u128 {
        let raw = (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64());
        raw % bound
    }
}

fn words(x: u128) -> Vec<u64> {
    vec![x as u64, (x >> 64) as u64]
}

/// Reference multiplication mod 2^127 − 1 via 256-bit folding.
fn mulmod(a: u128, b: u128) -> u128 {
    let (a0, a1) = (a & u64::MAX as u128, a >> 64);
    let (b0, b1) = (b & u64::MAX as u128, b >> 64);
    let ll = a0 * b0;
    let m1 = a0 * b1;
    let m2 = a1 * b0;
    let hh = a1 * b1;
    let s1 = ll.wrapping_add(m1 << 64);
    let c1 = u128::from(s1 < ll);
    let lo = s1.wrapping_add(m2 << 64);
    let c2 = u128::from(lo < s1);
    let hi = hh + (m1 >> 64) + (m2 >> 64) + c1 + c2;
    // value = hi·2^128 + lo; 2^127 ≡ 1 → 2^128 ≡ 2.
    ((lo & P) + (lo >> 127) + 2 * (hi % P)) % P
}

/// Montgomery multiplication matches the u128 reference.
#[test]
fn mont_mul_matches_reference() {
    let ctx = MontCtx::new(words(P));
    let mut g = Gen::new(1);
    for _ in 0..64 {
        let a = g.u128_below(P);
        let b = g.u128_below(P);
        let am = ctx.to_mont(&words(a));
        let bm = ctx.to_mont(&words(b));
        let got = ctx.from_mont(&ctx.mont_mul(&am, &bm));
        assert_eq!(got, words(mulmod(a, b)));
    }
}

/// Fermat's little theorem via modexp.
#[test]
fn fermat_holds() {
    let ctx = MontCtx::new(words(P));
    let exp = words(P - 1);
    let mut g = Gen::new(2);
    for _ in 0..16 {
        let a = 1 + g.u128_below(P - 1);
        assert_eq!(ctx.pow(&words(a), &exp), words(1));
    }
}

/// Exponent laws in the Schnorr group: g^(a+b) = g^a·g^b and
/// (g^a)^b = g^(a·b), with field arithmetic on exponents.
#[test]
fn group_exponent_laws() {
    let g = F61::group();
    let mut gen = Gen::new(3);
    for _ in 0..32 {
        let (fa, fb) = (F61::from_u64(gen.next_u64()), F61::from_u64(gen.next_u64()));
        let ga = g.gen_pow(&fa.exponent_words());
        let gb = g.gen_pow(&fb.exponent_words());
        assert_eq!(g.mul(&ga, &gb), g.gen_pow(&(fa + fb).exponent_words()));
        assert_eq!(
            g.pow(&ga, &fb.exponent_words()),
            g.gen_pow(&(fa * fb).exponent_words())
        );
    }
}

/// ElGamal: Dec(Enc(m)) = g^m and the homomorphisms hold for random
/// messages and scalars.
#[test]
fn elgamal_homomorphisms() {
    let mut gen = Gen::new(4);
    for _ in 0..24 {
        let mut prg = ChaChaPrg::from_u64_seed(gen.next_u64());
        let kp = KeyPair::<F61>::generate(&mut prg);
        let m1 = F61::from_u64(gen.next_u64());
        let m2 = F61::from_u64(gen.next_u64());
        let c = F61::from_u64(gen.next_u64());
        let ct1 = ElGamal::<F61>::encrypt(kp.public(), m1, &mut prg);
        let ct2 = ElGamal::<F61>::encrypt(kp.public(), m2, &mut prg);
        assert_eq!(
            ElGamal::<F61>::decrypt_to_group(&kp, &ct1),
            ElGamal::<F61>::encode(m1)
        );
        let sum = ElGamal::<F61>::add(&ct1, &ct2);
        assert_eq!(
            ElGamal::<F61>::decrypt_to_group(&kp, &sum),
            ElGamal::<F61>::encode(m1 + m2)
        );
        let scaled = ElGamal::<F61>::scale(&ct1, c);
        assert_eq!(
            ElGamal::<F61>::decrypt_to_group(&kp, &scaled),
            ElGamal::<F61>::encode(m1 * c)
        );
    }
}

/// Group element serialization round-trips.
#[test]
fn group_serialization_round_trips() {
    let g = F61::group();
    let mut gen = Gen::new(5);
    for _ in 0..64 {
        let x = g.gen_pow(&[gen.next_u64()]);
        let bytes = g.elem_to_bytes(&x);
        assert_eq!(bytes.len(), g.elem_bytes());
        assert_eq!(g.elem_from_bytes(&bytes), Some(x));
    }
}

/// ChaCha stream determinism.
#[test]
fn chacha_determinism() {
    let mut gen = Gen::new(6);
    for _ in 0..32 {
        let seed = gen.next_u64();
        let n = 1 + (gen.next_u64() as usize % 63);
        let mut a = ChaChaPrg::from_u64_seed(seed);
        let mut b = ChaChaPrg::from_u64_seed(seed);
        let xs: Vec<u64> = (0..n).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..n).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
    }
}
