//! Exponential ElGamal over a Schnorr group.
//!
//! Ginger's linear commitment (§2.2) needs homomorphic — *not* fully
//! homomorphic — encryption: the verifier encrypts a random vector `r`,
//! and the prover computes `Enc(π(r))` for its linear function `π` using
//! only ciphertext multiplications and scalar exponentiations. Messages
//! live "in the exponent" (`Enc(m) = (gᵏ, gᵐ·hᵏ)`), so decryption yields
//! `gᵐ` rather than `m` — sufficient, because the verifier only ever
//! checks `gᵐ` against an exponent it can compute itself.

use crate::chacha::ChaChaPrg;
use crate::group::{FixedBaseTable, GroupElem, HasGroup, MsmAccumulator, SchnorrGroup};
use zaatar_mem::Scratch;

/// Minimum vector length at which [`ElGamal::encrypt_vec`] builds a
/// per-public-key fixed-base table. Building costs ~15 multiplications
/// per 4-bit window while each use saves ~1.5 bits-worth of them, so the
/// table pays for itself within a handful of encryptions.
const FIXED_BASE_MIN_BATCH: usize = 4;

/// An ElGamal ciphertext `(gᵏ, gᵐ·hᵏ)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Ciphertext {
    /// `gᵏ`.
    pub c1: GroupElem,
    /// `gᵐ·hᵏ`.
    pub c2: GroupElem,
}

/// An ElGamal keypair: secret exponent `s` (a field element) and public
/// key `h = gˢ`.
#[derive(Clone, Debug)]
pub struct KeyPair<F> {
    sk: F,
    pk: GroupElem,
}

impl<F: HasGroup> KeyPair<F> {
    /// Generates a keypair from the supplied PRG.
    pub fn generate(prg: &mut ChaChaPrg) -> Self {
        let sk: F = prg.field_element();
        let pk = F::group().gen_pow(&sk.exponent_words());
        KeyPair { sk, pk }
    }

    /// The public key `h = gˢ`.
    pub fn public(&self) -> &GroupElem {
        &self.pk
    }
}

/// The exponential ElGamal scheme bound to the group paired with field
/// `F` ([`HasGroup`]).
pub struct ElGamal<F> {
    _marker: core::marker::PhantomData<F>,
}

impl<F: HasGroup> ElGamal<F> {
    fn group() -> &'static SchnorrGroup {
        F::group()
    }

    /// Encrypts the field element `m` under `pk` with randomness from
    /// `prg`: `(gᵏ, gᵐ·hᵏ)`. The two generator powers go through the
    /// interned fixed-base table; `hᵏ` pays square-and-multiply since
    /// `pk` is a one-off base here (see [`Self::encrypt_vec`]).
    pub fn encrypt(pk: &GroupElem, m: F, prg: &mut ChaChaPrg) -> Ciphertext {
        Self::encrypt_inner(pk, None, m, prg)
    }

    fn encrypt_inner(
        pk: &GroupElem,
        pk_table: Option<&FixedBaseTable>,
        m: F,
        prg: &mut ChaChaPrg,
    ) -> Ciphertext {
        let g = Self::group();
        let k: F = prg.field_element();
        let c1 = g.gen_pow(&k.exponent_words());
        let gm = g.gen_pow(&m.exponent_words());
        let hk = match pk_table {
            Some(table) => g.pow_fixed(table, &k.exponent_words()),
            None => g.pow(pk, &k.exponent_words()),
        };
        Ciphertext {
            c1,
            c2: g.mul(&gm, &hk),
        }
    }

    /// Encrypts a whole vector (the commitment's `Enc(r)` step). For
    /// batches of [`FIXED_BASE_MIN_BATCH`] or more the public key gets
    /// its own fixed-base window table, amortized across the vector.
    /// Randomness consumption is identical either way, so ciphertexts
    /// match [`Self::encrypt`] element-for-element on the same PRG state.
    pub fn encrypt_vec(pk: &GroupElem, ms: &[F], prg: &mut ChaChaPrg) -> Vec<Ciphertext> {
        let mut out = Vec::new();
        Self::encrypt_vec_into(pk, ms, prg, &mut out);
        out
    }

    /// [`Self::encrypt_vec`] writing into a caller-owned buffer: `out` is
    /// cleared and refilled, so the staged prover's per-worker workspace
    /// can reuse one ciphertext allocation across batch instances. PRG
    /// consumption and the fixed-base threshold are identical to the
    /// allocating path, keeping transcripts byte-for-byte equal.
    pub fn encrypt_vec_into(
        pk: &GroupElem,
        ms: &[F],
        prg: &mut ChaChaPrg,
        out: &mut Vec<Ciphertext>,
    ) {
        out.clear();
        out.reserve(ms.len());
        if ms.len() >= FIXED_BASE_MIN_BATCH {
            let table = Self::group().fixed_base_table(pk);
            out.extend(
                ms.iter()
                    .map(|m| Self::encrypt_inner(pk, Some(&table), *m, prg)),
            );
        } else {
            out.extend(ms.iter().map(|m| Self::encrypt(pk, *m, prg)));
        }
    }

    /// Decrypts to the *group encoding* `gᵐ` of the message.
    pub fn decrypt_to_group(kp: &KeyPair<F>, ct: &Ciphertext) -> GroupElem {
        let g = Self::group();
        // gᵐ = c2 · c1^(−s).
        let c1_neg_s = g.pow_neg(&ct.c1, &kp.sk.exponent_words());
        g.mul(&ct.c2, &c1_neg_s)
    }

    /// The group encoding `gᵐ` of a known message (for comparisons
    /// against decryptions).
    pub fn encode(m: F) -> GroupElem {
        Self::group().gen_pow(&m.exponent_words())
    }

    /// Homomorphic addition of plaintexts: `Enc(m₁)·Enc(m₂) = Enc(m₁+m₂)`.
    pub fn add(a: &Ciphertext, b: &Ciphertext) -> Ciphertext {
        let g = Self::group();
        Ciphertext {
            c1: g.mul(&a.c1, &b.c1),
            c2: g.mul(&a.c2, &b.c2),
        }
    }

    /// Homomorphic scalar multiplication: `Enc(m)^c = Enc(m·c)`.
    pub fn scale(a: &Ciphertext, c: F) -> Ciphertext {
        let g = Self::group();
        let e = c.exponent_words();
        Ciphertext {
            c1: g.pow(&a.c1, &e),
            c2: g.pow(&a.c2, &e),
        }
    }

    /// Homomorphic inner product: `∏ Enc(rᵢ)^(uᵢ) = Enc(⟨r, u⟩)` — the
    /// prover's entire commitment computation (§2.2, "apply its function
    /// to an encrypted vector").
    ///
    /// Runs the Pippenger bucket MSM ([`SchnorrGroup::msm`]) once per
    /// ciphertext component; a zero-length oracle commits to the
    /// identity ciphertext ([`Self::zero`]), never a panic.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn inner_product(cts: &[Ciphertext], scalars: &[F]) -> Ciphertext {
        Self::inner_product_scratch(cts, scalars, &mut Scratch::new())
    }

    /// [`Self::inner_product`] leasing the MSM bucket accumulators from
    /// a caller-owned [`Scratch`] pool (the prover's commit and answer
    /// stages thread their `ProverWorkspace` pool through here).
    pub fn inner_product_scratch(
        cts: &[Ciphertext],
        scalars: &[F],
        scratch: &mut Scratch<u64>,
    ) -> Ciphertext {
        assert_eq!(cts.len(), scalars.len(), "length mismatch");
        let g = Self::group();
        // Gather the surviving (nonzero-scalar) pairs once, then run one
        // MSM per ciphertext component over the same scalar set.
        let mut c1s: Vec<&[u64]> = Vec::with_capacity(cts.len());
        let mut c2s: Vec<&[u64]> = Vec::with_capacity(cts.len());
        let mut exps: Vec<Vec<u64>> = Vec::with_capacity(cts.len());
        for (ct, s) in cts.iter().zip(scalars.iter()) {
            if s.is_zero() {
                continue;
            }
            c1s.push(ct.c1.words());
            c2s.push(ct.c2.words());
            exps.push(s.exponent_words());
        }
        let exp_refs: Vec<&[u64]> = exps.iter().map(|e| e.as_slice()).collect();
        Ciphertext {
            c1: GroupElem::from_mont_words(g.msm_words(&c1s, &exp_refs, scratch)),
            c2: GroupElem::from_mont_words(g.msm_words(&c2s, &exp_refs, scratch)),
        }
    }

    /// [`Self::inner_product_scratch`] consuming the scalar vector
    /// `chunk_len` entries at a time: each chunk's pairs run through the
    /// Pippenger kernel separately and the per-chunk ciphertext products
    /// fold together via [`MsmAccumulator`]. The group product over
    /// ordered chunks equals the one-shot product, so the resulting
    /// ciphertext is **equal** (byte-identical once serialized) to the
    /// monolithic path's — while peak transient memory is bounded by the
    /// chunk: the gathered word-slice vectors and the leased MSM bucket
    /// buffer are all chunk-sized. This is the streaming commit stage's
    /// entry point.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ or `chunk_len == 0`.
    pub fn inner_product_chunked(
        cts: &[Ciphertext],
        scalars: &[F],
        chunk_len: usize,
        scratch: &mut Scratch<u64>,
    ) -> Ciphertext {
        assert!(chunk_len > 0, "chunk_len must be positive");
        assert_eq!(cts.len(), scalars.len(), "length mismatch");
        let g = Self::group();
        let mut acc1 = MsmAccumulator::new();
        let mut acc2 = MsmAccumulator::new();
        let mut c1s: Vec<&[u64]> = Vec::with_capacity(chunk_len);
        let mut c2s: Vec<&[u64]> = Vec::with_capacity(chunk_len);
        let mut exps: Vec<Vec<u64>> = Vec::with_capacity(chunk_len);
        for (ct_chunk, s_chunk) in cts.chunks(chunk_len).zip(scalars.chunks(chunk_len)) {
            c1s.clear();
            c2s.clear();
            exps.clear();
            for (ct, s) in ct_chunk.iter().zip(s_chunk.iter()) {
                if s.is_zero() {
                    continue;
                }
                c1s.push(ct.c1.words());
                c2s.push(ct.c2.words());
                exps.push(s.exponent_words());
            }
            let exp_refs: Vec<&[u64]> = exps.iter().map(|e| e.as_slice()).collect();
            g.msm_words_accumulate(&mut acc1, &c1s, &exp_refs, scratch);
            g.msm_words_accumulate(&mut acc2, &c2s, &exp_refs, scratch);
        }
        Ciphertext {
            c1: g.msm_accumulator_finish(acc1),
            c2: g.msm_accumulator_finish(acc2),
        }
    }

    /// Reference per-element inner product (square-and-multiply per
    /// scalar) — the differential oracle the MSM path is tested and
    /// benchmarked against. Same skip-zero-scalars semantics as
    /// [`Self::inner_product`].
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn inner_product_naive(cts: &[Ciphertext], scalars: &[F]) -> Ciphertext {
        assert_eq!(cts.len(), scalars.len(), "length mismatch");
        let g = Self::group();
        let mut acc = Ciphertext {
            c1: g.identity(),
            c2: g.identity(),
        };
        for (ct, s) in cts.iter().zip(scalars.iter()) {
            if s.is_zero() {
                continue;
            }
            let term = Self::scale(ct, *s);
            acc = Self::add(&acc, &term);
        }
        acc
    }

    /// The trivial encryption of zero (identity ciphertext).
    pub fn zero() -> Ciphertext {
        let g = Self::group();
        Ciphertext {
            c1: g.identity(),
            c2: g.identity(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zaatar_field::{Field, F61};

    type Eg = ElGamal<F61>;

    fn setup() -> (KeyPair<F61>, ChaChaPrg) {
        let mut prg = ChaChaPrg::from_u64_seed(0xe16a);
        let kp = KeyPair::generate(&mut prg);
        (kp, prg)
    }

    #[test]
    fn decrypt_recovers_encoding() {
        let (kp, mut prg) = setup();
        for v in [0u64, 1, 42, 0xffff_ffff] {
            let m = F61::from_u64(v);
            let ct = Eg::encrypt(kp.public(), m, &mut prg);
            assert_eq!(Eg::decrypt_to_group(&kp, &ct), Eg::encode(m), "v={v}");
        }
    }

    #[test]
    fn encryption_is_randomized() {
        let (kp, mut prg) = setup();
        let m = F61::from_u64(9);
        let a = Eg::encrypt(kp.public(), m, &mut prg);
        let b = Eg::encrypt(kp.public(), m, &mut prg);
        assert_ne!(a, b, "two encryptions of the same message must differ");
        assert_eq!(Eg::decrypt_to_group(&kp, &a), Eg::decrypt_to_group(&kp, &b));
    }

    #[test]
    fn additive_homomorphism() {
        let (kp, mut prg) = setup();
        let (m1, m2) = (F61::from_u64(100), F61::from_u64(23));
        let c1 = Eg::encrypt(kp.public(), m1, &mut prg);
        let c2 = Eg::encrypt(kp.public(), m2, &mut prg);
        let sum = Eg::add(&c1, &c2);
        assert_eq!(Eg::decrypt_to_group(&kp, &sum), Eg::encode(m1 + m2));
    }

    #[test]
    fn scalar_homomorphism() {
        let (kp, mut prg) = setup();
        let m = F61::from_u64(7);
        let c = F61::from_u64(6);
        let ct = Eg::encrypt(kp.public(), m, &mut prg);
        let scaled = Eg::scale(&ct, c);
        assert_eq!(Eg::decrypt_to_group(&kp, &scaled), Eg::encode(m * c));
    }

    #[test]
    fn scalar_homomorphism_wraps_with_field() {
        // Scaling by a "negative" field element must wrap exactly like
        // field arithmetic — this is where a mismatched group order would
        // break.
        let (kp, mut prg) = setup();
        let m = F61::from_u64(5);
        let c = -F61::from_u64(2);
        let ct = Eg::encrypt(kp.public(), m, &mut prg);
        let scaled = Eg::scale(&ct, c);
        assert_eq!(Eg::decrypt_to_group(&kp, &scaled), Eg::encode(m * c));
    }

    #[test]
    fn inner_product_homomorphism() {
        let (kp, mut prg) = setup();
        let r: Vec<F61> = (1..=6u64).map(|i| F61::from_u64(i * 1000 + 3)).collect();
        let u: Vec<F61> = (1..=6u64).map(|i| F61::from_u64(i * 7)).collect();
        let cts = Eg::encrypt_vec(kp.public(), &r, &mut prg);
        let ct = Eg::inner_product(&cts, &u);
        let expect: F61 = r.iter().zip(u.iter()).map(|(a, b)| *a * *b).sum();
        assert_eq!(Eg::decrypt_to_group(&kp, &ct), Eg::encode(expect));
    }

    #[test]
    fn inner_product_skips_zero_scalars() {
        let (kp, mut prg) = setup();
        let r = vec![F61::from_u64(11), F61::from_u64(22)];
        let u = vec![F61::ZERO, F61::from_u64(3)];
        let cts = Eg::encrypt_vec(kp.public(), &r, &mut prg);
        let ct = Eg::inner_product(&cts, &u);
        assert_eq!(Eg::decrypt_to_group(&kp, &ct), Eg::encode(F61::from_u64(66)));
    }

    #[test]
    fn chunked_inner_product_identical_to_monolithic() {
        // The streaming commit stage's accumulation must yield the
        // *same ciphertext* (not just the same plaintext) as the
        // one-shot MSM, for every chunking including ragged tails and
        // chunks that are entirely zero-scalar.
        let (kp, mut prg) = setup();
        let r: Vec<F61> = (1..=17u64).map(|i| F61::from_u64(i * 31 + 5)).collect();
        let mut u: Vec<F61> = (1..=17u64).map(|i| F61::from_u64(i * 13)).collect();
        u[3] = F61::ZERO;
        u[8] = F61::ZERO;
        u[9] = F61::ZERO;
        let cts = Eg::encrypt_vec(kp.public(), &r, &mut prg);
        let mut scratch = Scratch::new();
        let reference = Eg::inner_product_scratch(&cts, &u, &mut scratch);
        for chunk_len in [1usize, 3, 8, 17, 64] {
            let chunked = Eg::inner_product_chunked(&cts, &u, chunk_len, &mut scratch);
            assert_eq!(chunked, reference, "chunk_len={chunk_len}");
        }
        // Empty input commits to the identity on both paths.
        assert_eq!(
            Eg::inner_product_chunked(&[], &[], 4, &mut scratch),
            Eg::zero()
        );
    }

    #[test]
    fn zero_ciphertext_decrypts_to_identity() {
        let (kp, _) = setup();
        assert_eq!(
            Eg::decrypt_to_group(&kp, &Eg::zero()),
            Eg::encode(F61::ZERO)
        );
    }

    #[test]
    fn encrypt_vec_matches_scalar_encrypt() {
        // The fixed-base batch path must produce byte-identical
        // ciphertexts to per-element encryption on the same PRG state.
        let (kp, _) = setup();
        let ms: Vec<F61> = (0..9u64).map(|i| F61::from_u64(i * i + 1)).collect();
        let mut p1 = ChaChaPrg::from_u64_seed(0x77);
        let mut p2 = ChaChaPrg::from_u64_seed(0x77);
        let batched = Eg::encrypt_vec(kp.public(), &ms, &mut p1);
        let serial: Vec<_> = ms.iter().map(|m| Eg::encrypt(kp.public(), *m, &mut p2)).collect();
        assert_eq!(batched, serial);
    }

    #[test]
    fn encrypt_vec_into_reuses_buffer_and_matches() {
        let (kp, _) = setup();
        let ms: Vec<F61> = (0..8u64).map(|i| F61::from_u64(i + 2)).collect();
        let mut p1 = ChaChaPrg::from_u64_seed(0xab);
        let mut p2 = ChaChaPrg::from_u64_seed(0xab);
        let fresh = Eg::encrypt_vec(kp.public(), &ms, &mut p1);
        let mut buf = Vec::new();
        Eg::encrypt_vec_into(kp.public(), &ms, &mut p2, &mut buf);
        assert_eq!(fresh, buf);
        let cap = buf.capacity();
        // Refilling an already-sized buffer must not regrow it, and must
        // replace (not append to) the previous contents.
        Eg::encrypt_vec_into(kp.public(), &ms, &mut p2, &mut buf);
        assert_eq!(buf.len(), ms.len());
        assert_eq!(buf.capacity(), cap);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn inner_product_length_mismatch_panics() {
        let (kp, mut prg) = setup();
        let cts = Eg::encrypt_vec(kp.public(), &[F61::ONE], &mut prg);
        let _ = Eg::inner_product(&cts, &[]);
    }
}
