//! Exponential ElGamal over a Schnorr group.
//!
//! Ginger's linear commitment (§2.2) needs homomorphic — *not* fully
//! homomorphic — encryption: the verifier encrypts a random vector `r`,
//! and the prover computes `Enc(π(r))` for its linear function `π` using
//! only ciphertext multiplications and scalar exponentiations. Messages
//! live "in the exponent" (`Enc(m) = (gᵏ, gᵐ·hᵏ)`), so decryption yields
//! `gᵐ` rather than `m` — sufficient, because the verifier only ever
//! checks `gᵐ` against an exponent it can compute itself.

use crate::chacha::ChaChaPrg;
use crate::group::{GroupElem, HasGroup, SchnorrGroup};

/// An ElGamal ciphertext `(gᵏ, gᵐ·hᵏ)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Ciphertext {
    /// `gᵏ`.
    pub c1: GroupElem,
    /// `gᵐ·hᵏ`.
    pub c2: GroupElem,
}

/// An ElGamal keypair: secret exponent `s` (a field element) and public
/// key `h = gˢ`.
#[derive(Clone, Debug)]
pub struct KeyPair<F> {
    sk: F,
    pk: GroupElem,
}

impl<F: HasGroup> KeyPair<F> {
    /// Generates a keypair from the supplied PRG.
    pub fn generate(prg: &mut ChaChaPrg) -> Self {
        let sk: F = prg.field_element();
        let pk = F::group().gen_pow(&sk.exponent_words());
        KeyPair { sk, pk }
    }

    /// The public key `h = gˢ`.
    pub fn public(&self) -> &GroupElem {
        &self.pk
    }
}

/// The exponential ElGamal scheme bound to the group paired with field
/// `F` ([`HasGroup`]).
pub struct ElGamal<F> {
    _marker: core::marker::PhantomData<F>,
}

impl<F: HasGroup> ElGamal<F> {
    fn group() -> &'static SchnorrGroup {
        F::group()
    }

    /// Encrypts the field element `m` under `pk` with randomness from
    /// `prg`: `(gᵏ, gᵐ·hᵏ)`.
    pub fn encrypt(pk: &GroupElem, m: F, prg: &mut ChaChaPrg) -> Ciphertext {
        let g = Self::group();
        let k: F = prg.field_element();
        let c1 = g.gen_pow(&k.exponent_words());
        let gm = g.gen_pow(&m.exponent_words());
        let hk = g.pow(pk, &k.exponent_words());
        Ciphertext {
            c1,
            c2: g.mul(&gm, &hk),
        }
    }

    /// Encrypts a whole vector (the commitment's `Enc(r)` step).
    pub fn encrypt_vec(pk: &GroupElem, ms: &[F], prg: &mut ChaChaPrg) -> Vec<Ciphertext> {
        ms.iter().map(|m| Self::encrypt(pk, *m, prg)).collect()
    }

    /// Decrypts to the *group encoding* `gᵐ` of the message.
    pub fn decrypt_to_group(kp: &KeyPair<F>, ct: &Ciphertext) -> GroupElem {
        let g = Self::group();
        // gᵐ = c2 · c1^(−s).
        let c1_neg_s = g.pow_neg(&ct.c1, &kp.sk.exponent_words());
        g.mul(&ct.c2, &c1_neg_s)
    }

    /// The group encoding `gᵐ` of a known message (for comparisons
    /// against decryptions).
    pub fn encode(m: F) -> GroupElem {
        Self::group().gen_pow(&m.exponent_words())
    }

    /// Homomorphic addition of plaintexts: `Enc(m₁)·Enc(m₂) = Enc(m₁+m₂)`.
    pub fn add(a: &Ciphertext, b: &Ciphertext) -> Ciphertext {
        let g = Self::group();
        Ciphertext {
            c1: g.mul(&a.c1, &b.c1),
            c2: g.mul(&a.c2, &b.c2),
        }
    }

    /// Homomorphic scalar multiplication: `Enc(m)^c = Enc(m·c)`.
    pub fn scale(a: &Ciphertext, c: F) -> Ciphertext {
        let g = Self::group();
        let e = c.exponent_words();
        Ciphertext {
            c1: g.pow(&a.c1, &e),
            c2: g.pow(&a.c2, &e),
        }
    }

    /// Homomorphic inner product: `∏ Enc(rᵢ)^(uᵢ) = Enc(⟨r, u⟩)` — the
    /// prover's entire commitment computation (§2.2, "apply its function
    /// to an encrypted vector").
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn inner_product(cts: &[Ciphertext], scalars: &[F]) -> Ciphertext {
        assert_eq!(cts.len(), scalars.len(), "length mismatch");
        let g = Self::group();
        let mut acc = Ciphertext {
            c1: g.identity(),
            c2: g.identity(),
        };
        for (ct, s) in cts.iter().zip(scalars.iter()) {
            if s.is_zero() {
                continue;
            }
            let term = Self::scale(ct, *s);
            acc = Self::add(&acc, &term);
        }
        acc
    }

    /// The trivial encryption of zero (identity ciphertext).
    pub fn zero() -> Ciphertext {
        let g = Self::group();
        Ciphertext {
            c1: g.identity(),
            c2: g.identity(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zaatar_field::{Field, F61};

    type Eg = ElGamal<F61>;

    fn setup() -> (KeyPair<F61>, ChaChaPrg) {
        let mut prg = ChaChaPrg::from_u64_seed(0xe16a);
        let kp = KeyPair::generate(&mut prg);
        (kp, prg)
    }

    #[test]
    fn decrypt_recovers_encoding() {
        let (kp, mut prg) = setup();
        for v in [0u64, 1, 42, 0xffff_ffff] {
            let m = F61::from_u64(v);
            let ct = Eg::encrypt(kp.public(), m, &mut prg);
            assert_eq!(Eg::decrypt_to_group(&kp, &ct), Eg::encode(m), "v={v}");
        }
    }

    #[test]
    fn encryption_is_randomized() {
        let (kp, mut prg) = setup();
        let m = F61::from_u64(9);
        let a = Eg::encrypt(kp.public(), m, &mut prg);
        let b = Eg::encrypt(kp.public(), m, &mut prg);
        assert_ne!(a, b, "two encryptions of the same message must differ");
        assert_eq!(Eg::decrypt_to_group(&kp, &a), Eg::decrypt_to_group(&kp, &b));
    }

    #[test]
    fn additive_homomorphism() {
        let (kp, mut prg) = setup();
        let (m1, m2) = (F61::from_u64(100), F61::from_u64(23));
        let c1 = Eg::encrypt(kp.public(), m1, &mut prg);
        let c2 = Eg::encrypt(kp.public(), m2, &mut prg);
        let sum = Eg::add(&c1, &c2);
        assert_eq!(Eg::decrypt_to_group(&kp, &sum), Eg::encode(m1 + m2));
    }

    #[test]
    fn scalar_homomorphism() {
        let (kp, mut prg) = setup();
        let m = F61::from_u64(7);
        let c = F61::from_u64(6);
        let ct = Eg::encrypt(kp.public(), m, &mut prg);
        let scaled = Eg::scale(&ct, c);
        assert_eq!(Eg::decrypt_to_group(&kp, &scaled), Eg::encode(m * c));
    }

    #[test]
    fn scalar_homomorphism_wraps_with_field() {
        // Scaling by a "negative" field element must wrap exactly like
        // field arithmetic — this is where a mismatched group order would
        // break.
        let (kp, mut prg) = setup();
        let m = F61::from_u64(5);
        let c = -F61::from_u64(2);
        let ct = Eg::encrypt(kp.public(), m, &mut prg);
        let scaled = Eg::scale(&ct, c);
        assert_eq!(Eg::decrypt_to_group(&kp, &scaled), Eg::encode(m * c));
    }

    #[test]
    fn inner_product_homomorphism() {
        let (kp, mut prg) = setup();
        let r: Vec<F61> = (1..=6u64).map(|i| F61::from_u64(i * 1000 + 3)).collect();
        let u: Vec<F61> = (1..=6u64).map(|i| F61::from_u64(i * 7)).collect();
        let cts = Eg::encrypt_vec(kp.public(), &r, &mut prg);
        let ct = Eg::inner_product(&cts, &u);
        let expect: F61 = r.iter().zip(u.iter()).map(|(a, b)| *a * *b).sum();
        assert_eq!(Eg::decrypt_to_group(&kp, &ct), Eg::encode(expect));
    }

    #[test]
    fn inner_product_skips_zero_scalars() {
        let (kp, mut prg) = setup();
        let r = vec![F61::from_u64(11), F61::from_u64(22)];
        let u = vec![F61::ZERO, F61::from_u64(3)];
        let cts = Eg::encrypt_vec(kp.public(), &r, &mut prg);
        let ct = Eg::inner_product(&cts, &u);
        assert_eq!(Eg::decrypt_to_group(&kp, &ct), Eg::encode(F61::from_u64(66)));
    }

    #[test]
    fn zero_ciphertext_decrypts_to_identity() {
        let (kp, _) = setup();
        assert_eq!(
            Eg::decrypt_to_group(&kp, &Eg::zero()),
            Eg::encode(F61::ZERO)
        );
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn inner_product_length_mismatch_panics() {
        let (kp, mut prg) = setup();
        let cts = Eg::encrypt_vec(kp.public(), &[F61::ONE], &mut prg);
        let _ = Eg::inner_product(&cts, &[]);
    }
}
