//! Cryptographic substrate for the Zaatar argument system.
//!
//! The linear commitment protocol (§2.2) requires an *additively
//! homomorphic* encryption scheme — the paper uses ElGamal with 1024-bit
//! keys — and the query generator uses the ChaCha stream cipher as a
//! pseudorandom generator (§5.1). Both are implemented here from scratch:
//!
//! * [`mp`] — dynamic-width multiprecision Montgomery arithmetic (the
//!   1024-bit modular exponentiation engine);
//! * [`group`] — Schnorr groups: prime-order subgroups of `Z_p*` whose
//!   order equals the *PCP field modulus*, so that homomorphic operations
//!   on exponents coincide exactly with field arithmetic (this is what
//!   makes the commitment's consistency check sound: `π(r)` computed in
//!   the exponent equals `π(r)` computed in `F`);
//! * [`elgamal`] — exponential ElGamal (`Enc(m) = (gᵏ, gᵐ·hᵏ)`) with the
//!   ciphertext-multiply and scalar-exponent homomorphisms the commitment
//!   needs (decryption recovers `gᵐ`, which suffices: the verifier only
//!   ever *compares* exponents it already knows);
//! * [`chacha`] — the ChaCha20 stream cipher, used as the protocol's PRG.

pub mod chacha;
pub mod elgamal;
pub mod group;
pub mod mp;
pub mod primality;

pub use chacha::ChaChaPrg;
pub use elgamal::{Ciphertext, ElGamal, KeyPair};
pub use group::{FixedBaseTable, GroupElem, HasGroup, SchnorrGroup};
pub use primality::is_probable_prime;
