//! Schnorr groups: prime-order subgroups of `Z_p*` matched to each PCP
//! field.
//!
//! The linear commitment's consistency check compares field-side linear
//! combinations with exponent-side homomorphic combinations, so the
//! subgroup order **must equal the field modulus** — otherwise exponent
//! arithmetic (mod the group order) and field arithmetic (mod `p_F`)
//! disagree and the check breaks. Each group below was generated as
//! `p = 2·k·q + 1` with `q` the corresponding field modulus (1024-bit `p`
//! for the production fields, matching the paper's "ElGamal with 1024-bit
//! keys", §5.1; 256-bit for the test field) and a generator
//! `g = h^((p−1)/q)` of order exactly `q`.

use std::sync::OnceLock;

use zaatar_field::{PrimeField, F128, F220, F61};
use zaatar_mem::{Interner, Scratch};

use crate::mp::{is_zero, MontCtx};

/// An element of a [`SchnorrGroup`], stored in Montgomery form at the
/// group's width. Elements are only meaningful relative to the group that
/// produced them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GroupElem {
    mont: Vec<u64>,
}

impl GroupElem {
    /// Raw Montgomery words (used for serialization and hashing).
    pub fn words(&self) -> &[u64] {
        &self.mont
    }

    /// Wraps raw Montgomery words produced by this crate's own kernels
    /// (the MSM hands back bare word vectors to avoid intermediate
    /// copies).
    pub(crate) fn from_mont_words(mont: Vec<u64>) -> Self {
        GroupElem { mont }
    }
}

impl SchnorrGroup {
    /// Serializes an element to canonical little-endian bytes
    /// (`8 × width` bytes).
    pub fn elem_to_bytes(&self, e: &GroupElem) -> Vec<u8> {
        self.ctx
            .from_mont(&e.mont)
            .iter()
            .flat_map(|w| w.to_le_bytes())
            .collect()
    }

    /// Deserializes an element from canonical little-endian bytes;
    /// `None` on wrong length or unreduced value.
    pub fn elem_from_bytes(&self, bytes: &[u8]) -> Option<GroupElem> {
        if bytes.len() != 8 * self.ctx.width() {
            return None;
        }
        let words: Vec<u64> = bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk")))
            .collect();
        if crate::mp::geq(&words, self.ctx.modulus()) {
            return None;
        }
        Some(GroupElem {
            mont: self.ctx.to_mont(&words),
        })
    }

    /// Serialized element size in bytes.
    pub fn elem_bytes(&self) -> usize {
        8 * self.ctx.width()
    }
}

/// A prime-order subgroup of `Z_p*` with order equal to a PCP field
/// modulus.
#[derive(Clone, Debug)]
pub struct SchnorrGroup {
    ctx: MontCtx,
    generator: GroupElem,
    order: Vec<u64>,
}

impl SchnorrGroup {
    /// Builds a group from its modulus, generator, and subgroup order
    /// (all canonical little-endian words).
    ///
    /// # Panics
    ///
    /// Panics if the generator is not of the claimed order (checked via
    /// `g^q == 1` and `g != 1`).
    pub fn new(modulus: Vec<u64>, generator: Vec<u64>, order: Vec<u64>) -> Self {
        let ctx = MontCtx::new(modulus);
        let gen_mont = ctx.to_mont(&generator);
        let group = SchnorrGroup {
            generator: GroupElem {
                mont: gen_mont.clone(),
            },
            order,
            ctx,
        };
        assert!(
            group.generator.mont != group.ctx.one(),
            "generator must not be the identity"
        );
        let gq = group.ctx.mont_pow(&gen_mont, &group.order);
        assert!(
            gq == group.ctx.one(),
            "generator order does not divide the subgroup order"
        );
        group
    }

    /// The group generator `g`.
    pub fn generator(&self) -> GroupElem {
        self.generator.clone()
    }

    /// The identity element.
    pub fn identity(&self) -> GroupElem {
        GroupElem {
            mont: self.ctx.one(),
        }
    }

    /// The subgroup order (equal to the paired field's modulus).
    pub fn order(&self) -> &[u64] {
        &self.order
    }

    /// The modulus, as canonical little-endian words.
    pub fn modulus_words(&self) -> Vec<u64> {
        self.ctx.modulus().to_vec()
    }

    /// Modulus bit width (e.g. 1024 for production groups).
    pub fn modulus_bits(&self) -> u32 {
        let m = self.ctx.modulus();
        let top = *m.last().expect("non-empty modulus");
        (m.len() as u32) * 64 - top.leading_zeros()
    }

    /// Group operation: `a · b mod p`.
    pub fn mul(&self, a: &GroupElem, b: &GroupElem) -> GroupElem {
        GroupElem {
            mont: self.ctx.mont_mul(&a.mont, &b.mont),
        }
    }

    /// Exponentiation by a multi-word exponent (canonical words,
    /// typically a field element's canonical representation).
    pub fn pow(&self, base: &GroupElem, exp: &[u64]) -> GroupElem {
        GroupElem {
            mont: self.ctx.mont_pow(&base.mont, exp),
        }
    }

    /// `g^exp` for the group generator, served by the interned
    /// fixed-base window table (built once per process per group).
    pub fn gen_pow(&self, exp: &[u64]) -> GroupElem {
        self.pow_fixed(self.generator_table(), exp)
    }

    /// Inverts an element of the prime-order subgroup via
    /// `a⁻¹ = a^(q−1)`.
    pub fn invert(&self, a: &GroupElem) -> GroupElem {
        let mut exp = self.order.to_vec();
        // q is odd (it is a prime field modulus), so no borrow.
        exp[0] -= 1;
        self.pow(a, &exp)
    }

    /// Exponentiates by the *negation* of `exp` in the exponent group:
    /// `a^(q − exp)`. Requires `exp < q` and `exp != 0` handled by caller
    /// semantics (`exp == 0` yields `a^q = 1`, which is correct).
    pub fn pow_neg(&self, base: &GroupElem, exp: &[u64]) -> GroupElem {
        if is_zero(exp) {
            return self.identity();
        }
        let mut neg = self.order.to_vec();
        let borrow = crate::mp::sub_assign(&mut neg, exp);
        assert_eq!(borrow, 0, "exponent must be below the group order");
        self.pow(base, &neg)
    }
}

/// Widest window the MSM will pick; bounds bucket scratch at
/// `(2^12 − 1) · width` words (≈ 512 KiB at the 1024-bit width).
const MSM_MAX_WINDOW_BITS: usize = 12;

/// Window width (in bits) for a bucket MSM over `n` bases.
///
/// Per window of width `c`, the bucket method pays `n` accumulation
/// multiplications plus `~2·2^c` for the suffix-product drain, repeated
/// over `⌈bits/c⌉` windows — so the optimum grows with `log₂ n`. The
/// `−3` offset puts the drain cost at roughly an eighth of the
/// accumulation cost, which minimizes the total over the oracle sizes
/// the commitment actually sees (hundreds of bases); the differential
/// suite pins correctness at the boundaries either side.
pub fn msm_window_bits(n: usize) -> usize {
    if n <= 1 {
        return 1;
    }
    let log = (usize::BITS - 1 - n.leading_zeros()) as usize;
    log.saturating_sub(3).clamp(1, MSM_MAX_WINDOW_BITS)
}

/// Bits `[bit, bit + c)` of a little-endian multi-word integer (reads
/// across one word boundary; out-of-range bits are zero).
fn window_digit(s: &[u64], bit: usize, c: usize) -> usize {
    let word = bit / 64;
    if word >= s.len() {
        return 0;
    }
    let shift = bit % 64;
    let mut d = s[word] >> shift;
    let have = 64 - shift;
    if have < c && word + 1 < s.len() {
        d |= s[word + 1] << have;
    }
    (d & ((1u64 << c) - 1)) as usize
}

impl SchnorrGroup {
    /// Multi-scalar multiplication `∏ basesᵢ^(scalarsᵢ)` by the
    /// Pippenger bucket method — the commitment engine's inner loop
    /// (`Enc(π(r)) = ∏ Enc(rᵢ)^(uᵢ)`, §2.2, runs this once per
    /// ciphertext component).
    ///
    /// Scalars are canonical little-endian words (any widths, including
    /// values above the subgroup order — the result is the plain
    /// integer-exponent product either way). Bases must be actual group
    /// elements (never the zero residue, which the buckets use as their
    /// empty sentinel). Window width comes from the input length via
    /// [`msm_window_bits`].
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn msm(&self, bases: &[GroupElem], scalars: &[&[u64]]) -> GroupElem {
        self.msm_scratch(bases, scalars, &mut Scratch::new())
    }

    /// [`Self::msm`] leasing its bucket accumulators from a
    /// caller-owned [`Scratch`] pool, so a prover committing to many
    /// instances pays for the bucket storage once per worker (the
    /// staged pipeline threads its `ProverWorkspace` pool through
    /// here).
    pub fn msm_scratch(
        &self,
        bases: &[GroupElem],
        scalars: &[&[u64]],
        scratch: &mut Scratch<u64>,
    ) -> GroupElem {
        let refs: Vec<&[u64]> = bases.iter().map(|b| b.mont.as_slice()).collect();
        GroupElem::from_mont_words(self.msm_words(&refs, scalars, scratch))
    }

    /// The MSM kernel over raw Montgomery word slices (how the ElGamal
    /// layer feeds ciphertext components without gathering them into
    /// owned `GroupElem` vectors).
    ///
    /// Buckets live in one flat leased buffer, `2^c − 1` slots of
    /// `width` words, with the all-zero block as the "empty" sentinel
    /// (zero is not a group element, so no valid accumulation can
    /// collide with it). Windows run most-significant first: between
    /// windows the accumulator is squared `c` times
    /// ([`MontCtx::mont_sqr`]), then each window's buckets drain via
    /// running suffix products (`∏ bucket[d]^d` in `2·(2^c − 1)`
    /// multiplications, skipping empty prefixes).
    pub(crate) fn msm_words(
        &self,
        bases: &[&[u64]],
        scalars: &[&[u64]],
        scratch: &mut Scratch<u64>,
    ) -> Vec<u64> {
        assert_eq!(bases.len(), scalars.len(), "length mismatch");
        let n = bases.len();
        let max_bits = scalars.iter().map(|s| bit_len(s)).max().unwrap_or(0);
        if n == 0 || max_bits == 0 {
            return self.ctx.one();
        }
        let width = self.ctx.width();
        let c = msm_window_bits(n);
        let num_windows = max_bits.div_ceil(c);
        let num_buckets = (1usize << c) - 1;
        let mut buckets = scratch.take(num_buckets * width, 0u64);
        let mut acc: Option<Vec<u64>> = None;
        let mut bucket_ops = 0u64;
        let mut doublings = 0u64;
        for w in (0..num_windows).rev() {
            // Shift the accumulator past this window (identity needs no
            // shifting, so the leading empty windows are free).
            if let Some(a) = acc.as_mut() {
                for _ in 0..c {
                    *a = self.ctx.mont_sqr(a);
                }
                doublings += c as u64;
            }
            for slot in buckets.iter_mut() {
                *slot = 0;
            }
            for (base, scalar) in bases.iter().zip(scalars.iter()) {
                let d = window_digit(scalar, w * c, c);
                if d == 0 {
                    continue;
                }
                let slot = &mut buckets[(d - 1) * width..d * width];
                if is_zero(slot) {
                    slot.copy_from_slice(base);
                } else {
                    let prod = self.ctx.mont_mul(slot, base);
                    slot.copy_from_slice(&prod);
                }
                bucket_ops += 1;
            }
            // Drain: running = ∏_{e ≥ d} bucket[e], summed into
            // window = ∏ bucket[d]^d.
            let mut running: Option<Vec<u64>> = None;
            let mut window: Option<Vec<u64>> = None;
            for d in (1..=num_buckets).rev() {
                let slot = &buckets[(d - 1) * width..d * width];
                if !is_zero(slot) {
                    running = Some(match running {
                        Some(r) => self.ctx.mont_mul(&r, slot),
                        None => slot.to_vec(),
                    });
                }
                if let Some(r) = running.as_ref() {
                    window = Some(match window {
                        Some(acc) => self.ctx.mont_mul(&acc, r),
                        None => r.clone(),
                    });
                }
            }
            if let Some(win) = window {
                acc = Some(match acc {
                    Some(a) => self.ctx.mont_mul(&a, &win),
                    None => win,
                });
            }
        }
        scratch.put(buckets);
        zaatar_obs::counter("commit.msm.windows").add(num_windows as u64);
        zaatar_obs::counter("commit.msm.buckets").add(bucket_ops);
        zaatar_obs::counter("commit.msm.doublings").add(doublings);
        acc.unwrap_or_else(|| self.ctx.one())
    }
}

/// A running MSM product for incremental (chunked) commitment
/// accumulation: each accumulate call runs the Pippenger kernel over one
/// chunk of `(base, scalar)` pairs and folds the chunk's product into
/// the accumulator with a single group multiplication. The group is
/// abelian, so the product over ordered chunks equals the one-shot MSM
/// over the concatenated inputs — the same residue, hence byte-identical
/// serialized commitments — while the leased bucket buffer is sized by
/// the *chunk* length ([`msm_window_bits`]), not the full vector. This
/// is how the streaming commit stage feeds `msm_scratch` scalars
/// chunk-at-a-time under a memory budget.
#[derive(Default)]
pub struct MsmAccumulator {
    acc: Option<Vec<u64>>,
}

impl MsmAccumulator {
    /// An empty accumulator (finishes to the identity).
    pub fn new() -> Self {
        MsmAccumulator { acc: None }
    }
}

impl SchnorrGroup {
    /// Folds one chunk's MSM into `acc` (raw Montgomery word slices, the
    /// same kernel interface the ElGamal layer feeds).
    pub(crate) fn msm_words_accumulate(
        &self,
        acc: &mut MsmAccumulator,
        bases: &[&[u64]],
        scalars: &[&[u64]],
        scratch: &mut Scratch<u64>,
    ) {
        if bases.is_empty() {
            return;
        }
        let part = self.msm_words(bases, scalars, scratch);
        acc.acc = Some(match acc.acc.take() {
            Some(a) => self.ctx.mont_mul(&a, &part),
            None => part,
        });
    }

    /// Closes an accumulator into its group element (identity if nothing
    /// was accumulated).
    pub fn msm_accumulator_finish(&self, acc: MsmAccumulator) -> GroupElem {
        GroupElem::from_mont_words(acc.acc.unwrap_or_else(|| self.ctx.one()))
    }

    /// [`Self::msm_scratch`] fed `chunk_len` pairs at a time through an
    /// [`MsmAccumulator`]. Identical result; bucket scratch sized by the
    /// chunk.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ or `chunk_len == 0`.
    pub fn msm_chunked(
        &self,
        bases: &[GroupElem],
        scalars: &[&[u64]],
        chunk_len: usize,
        scratch: &mut Scratch<u64>,
    ) -> GroupElem {
        assert!(chunk_len > 0, "chunk_len must be positive");
        assert_eq!(bases.len(), scalars.len(), "length mismatch");
        let mut acc = MsmAccumulator::new();
        for (bs, ss) in bases.chunks(chunk_len).zip(scalars.chunks(chunk_len)) {
            let refs: Vec<&[u64]> = bs.iter().map(|b| b.mont.as_slice()).collect();
            self.msm_words_accumulate(&mut acc, &refs, ss, scratch);
        }
        self.msm_accumulator_finish(acc)
    }
}

/// Window width for fixed-base exponentiation. Four bits divides the
/// 64-bit word size, so windows never straddle word boundaries.
const WINDOW_BITS: usize = 4;

/// Non-zero digits per window (`2^WINDOW_BITS − 1`).
const DIGITS_PER_WINDOW: usize = (1 << WINDOW_BITS) - 1;

/// A precomputed table for fixed-base windowed exponentiation: for every
/// 4-bit window `w` and digit `d ∈ 1…15` it stores
/// `base^(d · 2^(4w))`, so `base^e` becomes one table lookup and one
/// group multiplication per non-zero window of `e` — no squarings at
/// all. The table covers every exponent below the subgroup order
/// (rounded up to a whole window); larger exponents fall back to
/// square-and-multiply on the stored base.
///
/// Amortization: building the table costs `15 · ⌈bits/4⌉`
/// multiplications, one-time per base, while each subsequent
/// exponentiation drops from `~1.5 · bits` multiplications
/// (square-and-multiply) to at most `⌈bits/4⌉`.
#[derive(Clone, Debug)]
pub struct FixedBaseTable {
    /// `entries[w · 15 + (d − 1)] = base^(d · 2^(4w))`, Montgomery form.
    entries: Vec<Vec<u64>>,
    /// The base itself (Montgomery form), for the oversized-exponent
    /// fallback.
    base: Vec<u64>,
    num_windows: usize,
}

impl FixedBaseTable {
    /// Number of 4-bit windows the table covers.
    pub fn num_windows(&self) -> usize {
        self.num_windows
    }

    /// Largest exponent bit index (exclusive) the table can serve
    /// without falling back.
    pub fn capacity_bits(&self) -> usize {
        self.num_windows * WINDOW_BITS
    }
}

/// Bit length of a little-endian multi-word integer (0 for zero).
fn bit_len(words: &[u64]) -> usize {
    words
        .iter()
        .enumerate()
        .rev()
        .find(|(_, w)| **w != 0)
        .map(|(i, w)| i * 64 + 64 - w.leading_zeros() as usize)
        .unwrap_or(0)
}

/// True if `exp` has any bit set at or above `bits`.
fn exceeds(exp: &[u64], bits: usize) -> bool {
    bit_len(exp) > bits
}

impl SchnorrGroup {
    /// Builds a fixed-base window table for `base`, sized to cover any
    /// exponent below the subgroup order. Use for bases that will be
    /// raised to many exponents (the generator, an ElGamal public key
    /// during vector encryption).
    pub fn fixed_base_table(&self, base: &GroupElem) -> FixedBaseTable {
        let _span = zaatar_obs::time("commit.fixed_base_build");
        // Round the order's bit length up to whole windows; since
        // WINDOW_BITS divides 64 this also guarantees whole-word
        // coverage is a multiple of the window size.
        let order_bits = bit_len(&self.order).max(1);
        let num_windows = order_bits.div_ceil(WINDOW_BITS);
        let mut entries = Vec::with_capacity(num_windows * DIGITS_PER_WINDOW);
        // `cur` walks base^(2^(4w)); each window's entries are
        // cur, cur², …, cur¹⁵ built with multiplications only.
        let mut cur = base.mont.clone();
        for _ in 0..num_windows {
            let mut acc = cur.clone();
            entries.push(acc.clone());
            for _ in 2..=DIGITS_PER_WINDOW {
                acc = self.ctx.mont_mul(&acc, &cur);
                entries.push(acc.clone());
            }
            // acc == cur^15, so the next window's base cur^16 is one
            // more multiplication.
            cur = self.ctx.mont_mul(&acc, &cur);
        }
        FixedBaseTable {
            entries,
            base: base.mont.clone(),
            num_windows,
        }
    }

    /// `base^exp` via a precomputed [`FixedBaseTable`] for that base:
    /// one lookup + multiplication per non-zero 4-bit window. Exponents
    /// wider than the table's capacity (possible only for raw word
    /// slices above the subgroup order) fall back to square-and-multiply
    /// and stay correct.
    pub fn pow_fixed(&self, table: &FixedBaseTable, exp: &[u64]) -> GroupElem {
        if exceeds(exp, table.capacity_bits()) {
            return GroupElem {
                mont: self.ctx.mont_pow(&table.base, exp),
            };
        }
        let mut acc: Option<Vec<u64>> = None;
        for w in 0..table.num_windows {
            let bit = w * WINDOW_BITS;
            let word = bit / 64;
            if word >= exp.len() {
                break;
            }
            let digit = ((exp[word] >> (bit % 64)) & ((1 << WINDOW_BITS) - 1)) as usize;
            if digit == 0 {
                continue;
            }
            let entry = &table.entries[w * DIGITS_PER_WINDOW + digit - 1];
            acc = Some(match acc {
                Some(a) => self.ctx.mont_mul(&a, entry),
                None => entry.clone(),
            });
        }
        GroupElem {
            mont: acc.unwrap_or_else(|| self.ctx.one()),
        }
    }

    /// The interned fixed-base table for this group's generator.
    ///
    /// Tables are interned in a global [`zaatar_mem::Interner`] keyed
    /// by `(modulus, generator)` — shared machinery with the
    /// `zaatar_poly::plan` registry — so the (at most a handful of)
    /// process-wide groups each pay the build cost once. Registry hits
    /// are counted as `commit.fixed_base_hit`.
    pub fn generator_table(&self) -> &'static FixedBaseTable {
        static REGISTRY: Interner<Vec<u64>, FixedBaseTable> = Interner::new();
        // Key on modulus ++ generator so hypothetical same-modulus
        // groups with different generators cannot collide.
        let mut key = self.ctx.modulus().to_vec();
        key.extend_from_slice(&self.generator.mont);
        let (table, hit) =
            REGISTRY.intern_with(key, || self.fixed_base_table(&self.generator));
        zaatar_obs::counter(if hit {
            "commit.fixed_base_hit"
        } else {
            "commit.fixed_base_miss"
        })
        .inc();
        table
    }
}

/// Associates a PCP field with its matching Schnorr group.
///
/// Implemented for all three shipped fields; the group is constructed
/// once per process and cached.
pub trait HasGroup: PrimeField {
    /// The Schnorr group whose subgroup order equals this field's modulus.
    fn group() -> &'static SchnorrGroup;

    /// Convenience: this field element's canonical words, usable directly
    /// as a group exponent.
    fn exponent_words(&self) -> Vec<u64> {
        self.to_canonical_words()
    }
}

/// 1024-bit group paired with `F128` (`p = 2·k·q₁₂₈ + 1`).
const F128_GROUP_MODULUS: [u64; 16] = [
    0xd86b8480fe01262b,
    0x2aeaf6c97d5f5e61,
    0x75caa18caac75c93,
    0xfba0ea13191953fc,
    0xd2bc6ecc2c09fbc3,
    0x94ba93ecba9e1554,
    0x6a74859ef7485c95,
    0x5e597c3c68852913,
    0xa07f0a335b78044e,
    0x145ecfacda9a821d,
    0x7dec3bf2a7c84bd8,
    0x2445de0e708de965,
    0x1d3d501fe99be6e6,
    0x8d2e063b1b1c3795,
    0x1202b324eab82fdb,
    0x8e802683c80bad2a,
];

const F128_GROUP_GEN: [u64; 16] = [
    0x91a29d75620f698e,
    0xc202b8a322b29b44,
    0xa4a472e993b579a5,
    0xb38af0c1db755bd9,
    0x5d5d746a11de2761,
    0xb2f009b10280dbef,
    0xe8a3ce0ade3f6245,
    0xfaec3ca476bd77d0,
    0x4ff26a75c7afae8f,
    0xe6e98cf8f8948686,
    0xfec525429531dec8,
    0x399c2d5869786ae7,
    0x7618d72f65f0136d,
    0x28ee3f64f394cc91,
    0x4c84d3c194ec9154,
    0x0f056540c6338b47,
];

/// 1024-bit group paired with `F220`.
const F220_GROUP_MODULUS: [u64; 16] = [
    0x3475e8bb2d69f6fd,
    0xe15ceaa6d21ea082,
    0x15b30634157d7228,
    0x2cddb017566bfb41,
    0xb8b737a50309df51,
    0xd3c7743c8dd48812,
    0x773b3a6651cf7b6d,
    0x9c4f709d437e6617,
    0xa881c4230fa0c6c1,
    0x5930211c9215e137,
    0x83bb3222b9430ff5,
    0xf82ecbf61cfe810d,
    0x6de8d7e2350af079,
    0xebff38f8e0495daf,
    0x420b41fdca84d024,
    0xb25a537464a5f999,
];

const F220_GROUP_GEN: [u64; 16] = [
    0x7b39927e73b5c6c0,
    0x52d7610e6fbc106d,
    0xe13f1f91243357d3,
    0x2da116336cf081ff,
    0xa8f77fc162f67b7c,
    0x4ef48fd449d41e57,
    0x640def1f69a21e2d,
    0x7b5d56b90b59cedb,
    0xf12dc6da880fa213,
    0x58fccd385fd1c2d4,
    0x16d56d726eb1a204,
    0x146811369cd5bddf,
    0x302fd5cc7b88ec36,
    0xbd0c495f0a3ca173,
    0x8216d96bef33ce69,
    0xa4daac68115c9d22,
];

/// 256-bit group paired with the `F61` test field (small keys keep unit
/// tests fast; production fields use 1024-bit groups).
const F61_GROUP_MODULUS: [u64; 4] = [
    0x614a33842324c141,
    0x54c9fcd5a424ff8c,
    0xba9fefa303bd7bbf,
    0xfa8c5cb35d9b7de4,
];

const F61_GROUP_GEN: [u64; 4] = [
    0x1b5da75de9436749,
    0x1637e6faeb4032f8,
    0x229b8b7cf94fb931,
    0x0736eda29b0c6661,
];

impl HasGroup for F128 {
    fn group() -> &'static SchnorrGroup {
        static GROUP: OnceLock<SchnorrGroup> = OnceLock::new();
        GROUP.get_or_init(|| {
            SchnorrGroup::new(
                F128_GROUP_MODULUS.to_vec(),
                F128_GROUP_GEN.to_vec(),
                F128::modulus_words(),
            )
        })
    }
}

impl HasGroup for F220 {
    fn group() -> &'static SchnorrGroup {
        static GROUP: OnceLock<SchnorrGroup> = OnceLock::new();
        GROUP.get_or_init(|| {
            SchnorrGroup::new(
                F220_GROUP_MODULUS.to_vec(),
                F220_GROUP_GEN.to_vec(),
                F220::modulus_words(),
            )
        })
    }
}

impl HasGroup for F61 {
    fn group() -> &'static SchnorrGroup {
        static GROUP: OnceLock<SchnorrGroup> = OnceLock::new();
        GROUP.get_or_init(|| {
            SchnorrGroup::new(
                F61_GROUP_MODULUS.to_vec(),
                F61_GROUP_GEN.to_vec(),
                F61::modulus_words(),
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zaatar_field::Field;

    #[test]
    fn generator_orders_check_out() {
        // Constructing each group runs the order assertions.
        assert_eq!(F61::group().modulus_bits(), 256);
        assert_eq!(F128::group().modulus_bits(), 1024);
        assert_eq!(F220::group().modulus_bits(), 1024);
    }

    #[test]
    fn exponent_arithmetic_matches_field() {
        // g^a · g^b == g^(a+b) with field addition — the property the
        // commitment protocol depends on.
        let g = F61::group();
        let a = F61::from_u64(0x1234_5678_9abc);
        let b = F61::from_u64(0xdead_beef_0042);
        let ga = g.gen_pow(&a.exponent_words());
        let gb = g.gen_pow(&b.exponent_words());
        let gsum = g.gen_pow(&(a + b).exponent_words());
        assert_eq!(g.mul(&ga, &gb), gsum);
    }

    #[test]
    fn exponent_wraparound_matches_field() {
        // Field addition that wraps mod q must agree with group exponents.
        let g = F61::group();
        let a = -F61::from_u64(3); // q − 3
        let b = F61::from_u64(10);
        let lhs = g.mul(&g.gen_pow(&a.exponent_words()), &g.gen_pow(&b.exponent_words()));
        assert_eq!(lhs, g.gen_pow(&F61::from_u64(7).exponent_words()));
    }

    #[test]
    fn pow_in_exponent_matches_field_mul() {
        let g = F61::group();
        let a = F61::from_u64(123456789);
        let c = F61::from_u64(987654321);
        let ga = g.gen_pow(&a.exponent_words());
        assert_eq!(
            g.pow(&ga, &c.exponent_words()),
            g.gen_pow(&(a * c).exponent_words())
        );
    }

    #[test]
    fn chunked_msm_identical_to_one_shot() {
        let g = F61::group();
        let bases: Vec<GroupElem> = (1..=13u64).map(|i| g.gen_pow(&[i * 7 + 1])).collect();
        let exps: Vec<Vec<u64>> = (1..=13u64)
            .map(|i| F61::from_u64(i * 0x1_0001 + 3).exponent_words())
            .collect();
        let exp_refs: Vec<&[u64]> = exps.iter().map(|e| e.as_slice()).collect();
        let mut scratch = Scratch::new();
        let reference = g.msm_scratch(&bases, &exp_refs, &mut scratch);
        for chunk_len in [1usize, 2, 5, 13, 100] {
            let chunked = g.msm_chunked(&bases, &exp_refs, chunk_len, &mut scratch);
            assert_eq!(chunked, reference, "chunk_len={chunk_len}");
        }
        // An empty accumulator finishes to the identity.
        assert_eq!(
            g.msm_accumulator_finish(MsmAccumulator::new()),
            g.identity()
        );
    }

    #[test]
    fn inversion_cancels() {
        let g = F61::group();
        let x = g.gen_pow(&[42]);
        let xi = g.invert(&x);
        assert_eq!(g.mul(&x, &xi), g.identity());
    }

    #[test]
    fn pow_neg_is_inverse_power() {
        let g = F61::group();
        let e = F61::from_u64(777);
        let direct = g.gen_pow(&e.exponent_words());
        let neg = g.pow_neg(&g.generator(), &e.exponent_words());
        assert_eq!(g.mul(&direct, &neg), g.identity());
        assert_eq!(g.pow_neg(&g.generator(), &[0, 0]), g.identity());
    }

    #[test]
    fn identity_behaviour() {
        let g = F61::group();
        let x = g.gen_pow(&[7]);
        assert_eq!(g.mul(&x, &g.identity()), x);
        assert_eq!(g.gen_pow(&[0]), g.identity());
    }

    #[test]
    fn fixed_base_matches_square_and_multiply() {
        let g = F61::group();
        let table = g.fixed_base_table(&g.generator());
        let mut gen = zaatar_field::testutil::SplitMix64::new(0xf1bb);
        for _ in 0..32 {
            let e = gen.field::<F61>().to_canonical_words();
            assert_eq!(g.pow_fixed(&table, &e), g.pow(&g.generator(), &e));
        }
    }

    #[test]
    fn fixed_base_edge_exponents() {
        let g = F61::group();
        let table = g.fixed_base_table(&g.generator());
        // 0, 1, and order − 1 stress the empty-window, single-window,
        // and all-windows paths.
        assert_eq!(g.pow_fixed(&table, &[0]), g.identity());
        assert_eq!(g.pow_fixed(&table, &[1]), g.generator());
        let mut qm1 = g.order().to_vec();
        qm1[0] -= 1;
        assert_eq!(g.pow_fixed(&table, &qm1), g.pow(&g.generator(), &qm1));
    }

    #[test]
    fn fixed_base_oversized_exponent_falls_back() {
        let g = F61::group();
        let table = g.fixed_base_table(&g.generator());
        // Wider than the table's capacity: must agree with the generic
        // path via the stored-base fallback.
        let e = vec![0x1234_5678_9abc_def0u64, 0xffff_0000_ffff_0000, 7];
        assert!(8 * 8 * e.len() > table.capacity_bits());
        assert_eq!(g.pow_fixed(&table, &e), g.pow(&g.generator(), &e));
    }

    #[test]
    fn fixed_base_non_generator_base() {
        let g = F61::group();
        let base = g.gen_pow(&[0xdead_beef]);
        let table = g.fixed_base_table(&base);
        let e = F61::from_u64(0x1357_9bdf).to_canonical_words();
        assert_eq!(g.pow_fixed(&table, &e), g.pow(&base, &e));
    }

    #[test]
    fn generator_table_is_interned() {
        let g = F61::group();
        let a = g.generator_table() as *const FixedBaseTable;
        let b = g.generator_table() as *const FixedBaseTable;
        assert_eq!(a, b, "interned table must be a process-wide singleton");
    }

    /// Reference MSM: fold `pow` + `mul` one base at a time.
    fn naive_msm(g: &SchnorrGroup, bases: &[GroupElem], scalars: &[&[u64]]) -> GroupElem {
        let mut acc = g.identity();
        for (b, s) in bases.iter().zip(scalars.iter()) {
            acc = g.mul(&acc, &g.pow(b, s));
        }
        acc
    }

    #[test]
    fn msm_matches_naive_random() {
        let g = F61::group();
        let mut gen = zaatar_field::testutil::SplitMix64::new(0x5151);
        for n in [1usize, 2, 3, 7, 8, 33] {
            let bases: Vec<GroupElem> =
                (0..n).map(|_| g.gen_pow(&gen.field::<F61>().to_canonical_words())).collect();
            let scalars: Vec<Vec<u64>> =
                (0..n).map(|_| gen.field::<F61>().to_canonical_words()).collect();
            let refs: Vec<&[u64]> = scalars.iter().map(|s| s.as_slice()).collect();
            assert_eq!(g.msm(&bases, &refs), naive_msm(g, &bases, &refs), "n={n}");
        }
    }

    #[test]
    fn msm_edge_shapes() {
        let g = F61::group();
        // Empty input → identity.
        assert_eq!(g.msm(&[], &[]), g.identity());
        // All-zero scalars → identity.
        let b = g.gen_pow(&[9]);
        assert_eq!(g.msm(&[b.clone(), b.clone()], &[&[0u64][..], &[0, 0][..]]), g.identity());
        // Single element equals plain pow.
        let e = [0xdead_beef_u64];
        assert_eq!(g.msm(std::slice::from_ref(&b), &[&e[..]]), g.pow(&b, &e));
        // Duplicate bases accumulate exponents: b^3 · b^5 = b^8.
        assert_eq!(
            g.msm(&[b.clone(), b.clone()], &[&[3u64][..], &[5u64][..]]),
            g.pow(&b, &[8])
        );
        // Mixed zero / nonzero scalars.
        let c = g.gen_pow(&[11]);
        assert_eq!(
            g.msm(&[b.clone(), c.clone()], &[&[0u64][..], &[4u64][..]]),
            g.pow(&c, &[4])
        );
    }

    #[test]
    fn msm_max_word_exponents() {
        // Exponents with every bit set (above the subgroup order) must
        // agree with plain square-and-multiply on the same words.
        let g = F61::group();
        let b1 = g.gen_pow(&[3]);
        let b2 = g.gen_pow(&[0x1234_5678]);
        let full = [u64::MAX, u64::MAX];
        let scalars = [&full[..], &full[..]];
        assert_eq!(
            g.msm(&[b1.clone(), b2.clone()], &scalars),
            naive_msm(g, &[b1, b2], &scalars)
        );
    }

    #[test]
    fn msm_scratch_reuse_is_stable() {
        // Two MSMs through the same pool (second reuses the leased bucket
        // buffer, possibly dirty) must both match the fresh-scratch path.
        let g = F61::group();
        let mut gen = zaatar_field::testutil::SplitMix64::new(0xabcd);
        let mut scratch = Scratch::new();
        for round in 0..4 {
            let n = 5 + round;
            let bases: Vec<GroupElem> =
                (0..n).map(|_| g.gen_pow(&gen.field::<F61>().to_canonical_words())).collect();
            let scalars: Vec<Vec<u64>> =
                (0..n).map(|_| gen.field::<F61>().to_canonical_words()).collect();
            let refs: Vec<&[u64]> = scalars.iter().map(|s| s.as_slice()).collect();
            assert_eq!(
                g.msm_scratch(&bases, &refs, &mut scratch),
                g.msm(&bases, &refs),
                "round={round}"
            );
        }
    }

    #[test]
    fn msm_window_bits_schedule() {
        // Small inputs stay at the 1-bit floor; growth is logarithmic;
        // the cap bounds bucket scratch.
        assert_eq!(msm_window_bits(0), 1);
        assert_eq!(msm_window_bits(1), 1);
        assert_eq!(msm_window_bits(16), 1);
        assert_eq!(msm_window_bits(32), 2);
        assert_eq!(msm_window_bits(256), 5);
        assert_eq!(msm_window_bits(512), 6);
        assert_eq!(msm_window_bits(usize::MAX), MSM_MAX_WINDOW_BITS);
    }

    #[test]
    fn window_digit_straddles_words() {
        // Bits 62..67 of [w0, w1]: low 2 bits from w0's top, high 3 from w1.
        let s = [0xc000_0000_0000_0000u64, 0b101];
        assert_eq!(window_digit(&s, 62, 5), 0b10111);
        // Fully out of range → 0.
        assert_eq!(window_digit(&s, 128, 5), 0);
        // Window extending past the last word is zero-padded.
        assert_eq!(window_digit(&s, 126, 5), 0);
    }
}
