//! The ChaCha20 stream cipher, used as the protocol's pseudorandom
//! generator (§5.1: "for a pseudorandom generator, we use the ChaCha
//! stream cipher").
//!
//! The verifier derives all its PCP queries from a short random seed via
//! this PRG; the same seed can be shipped to the prover so both sides
//! regenerate queries instead of shipping full query vectors over the
//! network (\[53, Apdx A.3\]).

use zaatar_field::Field;

/// The ChaCha quarter round.
#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// Computes one 64-byte ChaCha20 block into `out`.
fn chacha20_block(key: &[u32; 8], counter: u64, nonce: u64, out: &mut [u32; 16]) {
    // "expand 32-byte k" constants.
    let mut state: [u32; 16] = [
        0x6170_7865,
        0x3320_646e,
        0x7962_2d32,
        0x6b20_6574,
        key[0],
        key[1],
        key[2],
        key[3],
        key[4],
        key[5],
        key[6],
        key[7],
        counter as u32,
        (counter >> 32) as u32,
        nonce as u32,
        (nonce >> 32) as u32,
    ];
    let initial = state;
    for _ in 0..10 {
        // Column rounds.
        quarter_round(&mut state, 0, 4, 8, 12);
        quarter_round(&mut state, 1, 5, 9, 13);
        quarter_round(&mut state, 2, 6, 10, 14);
        quarter_round(&mut state, 3, 7, 11, 15);
        // Diagonal rounds.
        quarter_round(&mut state, 0, 5, 10, 15);
        quarter_round(&mut state, 1, 6, 11, 12);
        quarter_round(&mut state, 2, 7, 8, 13);
        quarter_round(&mut state, 3, 4, 9, 14);
    }
    for (o, (s, i)) in out.iter_mut().zip(state.iter().zip(initial.iter())) {
        *o = s.wrapping_add(*i);
    }
}

/// A deterministic PRG over the ChaCha20 keystream.
///
/// # Examples
///
/// ```
/// use zaatar_crypto::ChaChaPrg;
/// use zaatar_field::F128;
///
/// let mut prg = ChaChaPrg::from_seed([7u8; 32]);
/// let a: F128 = prg.field_element();
/// let b: F128 = prg.field_element();
/// assert_ne!(a, b);
///
/// // Same seed → same stream.
/// let mut prg2 = ChaChaPrg::from_seed([7u8; 32]);
/// assert_eq!(a, prg2.field_element::<F128>());
/// ```
#[derive(Clone, Debug)]
pub struct ChaChaPrg {
    key: [u32; 8],
    counter: u64,
    nonce: u64,
    buffer: [u32; 16],
    pos: usize,
}

impl ChaChaPrg {
    /// Creates a PRG from a 32-byte seed (the ChaCha key) with nonce 0.
    pub fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaChaPrg {
            key,
            counter: 0,
            nonce: 0,
            buffer: [0u32; 16],
            pos: 16,
        }
    }

    /// Creates a PRG from a 64-bit seed (convenience for tests and
    /// benches).
    pub fn from_u64_seed(seed: u64) -> Self {
        let mut bytes = [0u8; 32];
        bytes[..8].copy_from_slice(&seed.to_le_bytes());
        bytes[8..16].copy_from_slice(&seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).to_le_bytes());
        Self::from_seed(bytes)
    }

    /// A fresh, domain-separated stream sharing this PRG's key (used to
    /// derive independent query streams from one seed).
    pub fn fork(&self, stream: u64) -> Self {
        ChaChaPrg {
            key: self.key,
            counter: 0,
            nonce: stream.wrapping_add(1),
            buffer: [0u32; 16],
            pos: 16,
        }
    }

    /// Next 32 bits of keystream.
    pub fn next_u32(&mut self) -> u32 {
        if self.pos == 16 {
            chacha20_block(&self.key, self.counter, self.nonce, &mut self.buffer);
            self.counter += 1;
            self.pos = 0;
        }
        let w = self.buffer[self.pos];
        self.pos += 1;
        w
    }

    /// Next 64 bits of keystream.
    pub fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }

    /// Samples a uniform field element (rejection sampling).
    pub fn field_element<F: Field>(&mut self) -> F {
        F::random_from(|| self.next_u64())
    }

    /// Samples a vector of uniform field elements.
    pub fn field_vec<F: Field>(&mut self, n: usize) -> Vec<F> {
        (0..n).map(|_| self.field_element()).collect()
    }

    /// Fills a byte slice with keystream.
    pub fn fill_bytes(&mut self, out: &mut [u8]) {
        for chunk in out.chunks_mut(4) {
            let w = self.next_u32().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zaatar_field::{PrimeField, F61};

    /// RFC 8439 §2.3.2 test vector for the ChaCha20 block function.
    #[test]
    fn rfc8439_block_vector() {
        let key: [u32; 8] = [
            0x03020100, 0x07060504, 0x0b0a0908, 0x0f0e0d0c, 0x13121110, 0x17161514, 0x1b1a1918,
            0x1f1e1d1c,
        ];
        // Nonce 000000090000004a00000000 and counter 1, packed into our
        // (counter:u64, nonce:u64) layout: counter word0 = 1, word1 =
        // 0x09000000; nonce words = 0x4a000000, 0.
        let counter = 1u64 | ((0x0900_0000u64) << 32);
        let nonce = 0x4a00_0000u64;
        let mut out = [0u32; 16];
        chacha20_block(&key, counter, nonce, &mut out);
        let expect: [u32; 16] = [
            0xe4e7f110, 0x15593bd1, 0x1fdd0f50, 0xc47120a3, 0xc7f4d1c7, 0x0368c033, 0x9aaa2204,
            0x4e6cd4c3, 0x466482d2, 0x09aa9f07, 0x05d7c214, 0xa2028bd9, 0xd19c12b5, 0xb94e16de,
            0xe883d0cb, 0x4e3c50a2,
        ];
        assert_eq!(out, expect);
    }

    #[test]
    fn determinism_and_divergence() {
        let mut a = ChaChaPrg::from_u64_seed(1);
        let mut b = ChaChaPrg::from_u64_seed(1);
        let mut c = ChaChaPrg::from_u64_seed(2);
        let xs: Vec<u64> = (0..100).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..100).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..100).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn forks_are_independent_streams() {
        let base = ChaChaPrg::from_u64_seed(99);
        let mut f1 = base.fork(0);
        let mut f2 = base.fork(1);
        let a: Vec<u64> = (0..50).map(|_| f1.next_u64()).collect();
        let b: Vec<u64> = (0..50).map(|_| f2.next_u64()).collect();
        assert_ne!(a, b);
        // Re-forking reproduces the same stream.
        let mut f1b = base.fork(0);
        assert_eq!(f1b.next_u64(), a[0]);
    }

    #[test]
    fn field_elements_are_reduced() {
        let mut prg = ChaChaPrg::from_u64_seed(5);
        for _ in 0..200 {
            let x: F61 = prg.field_element();
            let words = x.to_canonical_words();
            assert!(words[0] < 0x1ffffff900000001);
        }
    }

    #[test]
    fn fill_bytes_partial_chunks() {
        let mut prg = ChaChaPrg::from_u64_seed(3);
        let mut buf = [0u8; 7];
        prg.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
