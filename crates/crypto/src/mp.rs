//! Dynamic-width multiprecision arithmetic with runtime Montgomery
//! contexts.
//!
//! Unlike `zaatar-field`, where the modulus is a compile-time constant,
//! the ElGamal group modulus is runtime data (different groups pair with
//! different PCP fields), so this module provides a [`MontCtx`] built at
//! runtime. Widths in this system are 4 limbs (256-bit test group) or 16
//! limbs (1024-bit production groups).

/// `a + b + carry` with carry out.
#[inline(always)]
fn adc(a: u64, b: u64, carry: u64) -> (u64, u64) {
    let t = a as u128 + b as u128 + carry as u128;
    (t as u64, (t >> 64) as u64)
}

/// `a − b − borrow` with borrow out.
#[inline(always)]
fn sbb(a: u64, b: u64, borrow: u64) -> (u64, u64) {
    let t = (a as u128).wrapping_sub(b as u128 + borrow as u128);
    (t as u64, ((t >> 64) as u64) & 1)
}

/// `acc + a·b + carry` returning (low, high).
#[inline(always)]
fn mac(acc: u64, a: u64, b: u64, carry: u64) -> (u64, u64) {
    let t = acc as u128 + (a as u128) * (b as u128) + carry as u128;
    (t as u64, (t >> 64) as u64)
}

/// Compares little-endian multi-word integers: `true` if `a >= b`.
pub fn geq(a: &[u64], b: &[u64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    for i in (0..a.len()).rev() {
        if a[i] != b[i] {
            return a[i] > b[i];
        }
    }
    true
}

/// `a += b`, returning the carry out.
pub fn add_assign(a: &mut [u64], b: &[u64]) -> u64 {
    let mut carry = 0;
    for (x, y) in a.iter_mut().zip(b.iter()) {
        let (lo, c) = adc(*x, *y, carry);
        *x = lo;
        carry = c;
    }
    carry
}

/// `a -= b`, returning the borrow out.
pub fn sub_assign(a: &mut [u64], b: &[u64]) -> u64 {
    let mut borrow = 0;
    for (x, y) in a.iter_mut().zip(b.iter()) {
        let (lo, bo) = sbb(*x, *y, borrow);
        *x = lo;
        borrow = bo;
    }
    borrow
}

/// Returns `true` if all words are zero.
pub fn is_zero(a: &[u64]) -> bool {
    a.iter().all(|&x| x == 0)
}

/// A Montgomery reduction context for an odd runtime modulus.
#[derive(Clone, Debug)]
pub struct MontCtx {
    modulus: Vec<u64>,
    /// `−m⁻¹ mod 2⁶⁴`.
    inv: u64,
    /// `R mod m` where `R = 2^(64·n)`.
    r: Vec<u64>,
    /// `R² mod m`.
    r2: Vec<u64>,
}

impl MontCtx {
    /// Builds a context for the given odd modulus (little-endian words,
    /// top word non-zero).
    ///
    /// # Panics
    ///
    /// Panics if the modulus is even, zero, or has a zero top word.
    pub fn new(modulus: Vec<u64>) -> Self {
        assert!(!modulus.is_empty(), "modulus must be non-empty");
        assert!(modulus[0] & 1 == 1, "modulus must be odd");
        assert!(
            *modulus.last().expect("non-empty") != 0,
            "modulus top word must be non-zero"
        );
        let n = modulus.len();
        // Newton iteration for m⁻¹ mod 2⁶⁴: x ← x(2 − m₀x).
        let m0 = modulus[0];
        let mut x = 1u64;
        for _ in 0..6 {
            x = x.wrapping_mul(2u64.wrapping_sub(m0.wrapping_mul(x)));
        }
        debug_assert_eq!(x.wrapping_mul(m0), 1);
        let inv = x.wrapping_neg();
        // R mod m and R² mod m by repeated modular doubling of 1.
        let mut acc = vec![0u64; n];
        acc[0] = 1;
        let mut r = Vec::new();
        for step in 0..(128 * n) {
            if step == 64 * n {
                r = acc.clone();
            }
            let mut doubled = acc.clone();
            let carry = add_assign(&mut doubled, &acc);
            if carry == 1 || geq(&doubled, &modulus) {
                sub_assign(&mut doubled, &modulus);
            }
            acc = doubled;
        }
        let r2 = acc;
        MontCtx {
            modulus,
            inv,
            r,
            r2,
        }
    }

    /// Word width of this context.
    pub fn width(&self) -> usize {
        self.modulus.len()
    }

    /// The modulus words.
    pub fn modulus(&self) -> &[u64] {
        &self.modulus
    }

    /// Montgomery form of 1 (i.e. `R mod m`).
    pub fn one(&self) -> Vec<u64> {
        self.r.clone()
    }

    /// Converts a canonical value (`< m`) into Montgomery form.
    pub fn to_mont(&self, a: &[u64]) -> Vec<u64> {
        debug_assert!(!geq(a, &self.modulus), "value must be reduced");
        self.mont_mul(a, &self.r2)
    }

    /// Converts a Montgomery-form value back to canonical form.
    pub fn from_mont(&self, a: &[u64]) -> Vec<u64> {
        let mut one = vec![0u64; self.width()];
        one[0] = 1;
        self.mont_mul(a, &one)
    }

    /// Montgomery multiplication (CIOS): `a·b/R mod m`.
    pub fn mont_mul(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        let n = self.width();
        debug_assert_eq!(a.len(), n);
        debug_assert_eq!(b.len(), n);
        let m = &self.modulus;
        let mut t = vec![0u64; n];
        let mut t_n: u64 = 0;
        for &bi in b.iter() {
            let mut carry = 0;
            for j in 0..n {
                let (lo, c) = mac(t[j], a[j], bi, carry);
                t[j] = lo;
                carry = c;
            }
            let (lo, overflow) = adc(t_n, carry, 0);
            t_n = lo;
            let t_n1 = overflow;

            let k = t[0].wrapping_mul(self.inv);
            let (_, mut carry) = mac(t[0], k, m[0], 0);
            for j in 1..n {
                let (lo, c) = mac(t[j], k, m[j], carry);
                t[j - 1] = lo;
                carry = c;
            }
            let (lo, c) = adc(t_n, carry, 0);
            t[n - 1] = lo;
            t_n = t_n1 + c;
        }
        if t_n == 1 || geq(&t, m) {
            sub_assign(&mut t, m);
        }
        t
    }

    /// Montgomery squaring (SOS): `a²/R mod m`, exploiting the symmetric
    /// cross terms of the schoolbook product — each `aᵢ·aⱼ` with `i < j`
    /// is computed once and doubled, so the product phase costs
    /// `n(n−1)/2 + n` word multiplications against `mont_mul`'s `n²`.
    /// With the `n²`-word reduction phase shared, a squaring lands at
    /// roughly ⅔–¾ the cost of a general multiplication — and squarings
    /// dominate both [`Self::mont_pow`] and the window shifts of the
    /// bucket MSM (`zaatar_crypto::group`), which is why they get their
    /// own kernel.
    pub fn mont_sqr(&self, a: &[u64]) -> Vec<u64> {
        let n = self.width();
        debug_assert_eq!(a.len(), n);
        let m = &self.modulus;
        // Product phase: t = a² over 2n words (one spare word absorbs
        // the reduction phase's carries). Cross terms first…
        let mut t = vec![0u64; 2 * n + 1];
        for i in 0..n {
            let mut carry = 0;
            for j in (i + 1)..n {
                let (lo, c) = mac(t[i + j], a[i], a[j], carry);
                t[i + j] = lo;
                carry = c;
            }
            t[i + n] = carry;
        }
        // …doubled (the cross sum is < a²/2, so the shift cannot carry
        // out of word 2n−1)…
        let mut carry = 0;
        for word in t.iter_mut() {
            let out = *word >> 63;
            *word = (*word << 1) | carry;
            carry = out;
        }
        debug_assert_eq!(carry, 0);
        // …plus the diagonal squares aᵢ² at words (2i, 2i+1).
        let mut carry = 0;
        for i in 0..n {
            let (lo, c) = mac(t[2 * i], a[i], a[i], carry);
            t[2 * i] = lo;
            let (lo, c) = adc(t[2 * i + 1], c, 0);
            t[2 * i + 1] = lo;
            carry = c;
        }
        debug_assert_eq!(carry, 0, "a² must fit in 2n words");
        // Reduction phase: n rounds of t += k·m·2^(64i) zero the low
        // half; the quotient lives in t[n..=2n].
        for i in 0..n {
            let k = t[i].wrapping_mul(self.inv);
            let mut carry = 0;
            for j in 0..n {
                let (lo, c) = mac(t[i + j], k, m[j], carry);
                t[i + j] = lo;
                carry = c;
            }
            let mut idx = i + n;
            while carry != 0 {
                let (lo, c) = adc(t[idx], carry, 0);
                t[idx] = lo;
                carry = c;
                idx += 1;
            }
        }
        // Result = (a² + Σ kᵢ·m·2^(64i)) / 2^(64n) < 2m: one conditional
        // subtraction settles it (t[2n] set means the value overflowed
        // n words and is certainly ≥ m).
        let mut out = t[n..2 * n].to_vec();
        if t[2 * n] != 0 || geq(&out, m) {
            sub_assign(&mut out, m);
        }
        out
    }

    /// Modular exponentiation with a multi-word exponent: returns
    /// `base^exp mod m` in Montgomery form, given `base` in Montgomery
    /// form. The square-per-bit rides [`Self::mont_sqr`].
    pub fn mont_pow(&self, base: &[u64], exp: &[u64]) -> Vec<u64> {
        let mut acc = self.one();
        let high = exp
            .iter()
            .enumerate()
            .rev()
            .find(|(_, w)| **w != 0)
            .map(|(i, w)| i * 64 + 63 - w.leading_zeros() as usize);
        let high = match high {
            Some(h) => h,
            None => return acc,
        };
        for i in (0..=high).rev() {
            acc = self.mont_sqr(&acc);
            if (exp[i / 64] >> (i % 64)) & 1 == 1 {
                acc = self.mont_mul(&acc, base);
            }
        }
        acc
    }

    /// Full modular exponentiation on canonical values.
    pub fn pow(&self, base: &[u64], exp: &[u64]) -> Vec<u64> {
        let b = self.to_mont(base);
        self.from_mont(&self.mont_pow(&b, exp))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn words(x: u128, n: usize) -> Vec<u64> {
        let mut v = vec![0u64; n];
        v[0] = x as u64;
        if n > 1 {
            v[1] = (x >> 64) as u64;
        }
        v
    }

    /// A 127-bit prime for reference testing (fits u128 arithmetic via
    /// Python-checked vectors).
    const P: u128 = (1 << 127) - 1; // Mersenne prime 2^127 − 1.

    #[test]
    fn ctx_constants() {
        let ctx = MontCtx::new(words(P, 2));
        assert_eq!(ctx.width(), 2);
        // R mod p for R = 2^128, p = 2^127 − 1: R = 2p + 2 → R mod p = 2.
        assert_eq!(ctx.one(), words(2, 2));
    }

    #[test]
    fn mont_round_trip() {
        let ctx = MontCtx::new(words(P, 2));
        let a = words(0xdead_beef_cafe_f00d_1234u128, 2);
        let m = ctx.to_mont(&a);
        assert_eq!(ctx.from_mont(&m), a);
    }

    #[test]
    fn mul_matches_reference() {
        let ctx = MontCtx::new(words(P, 2));
        let a = 0x0123_4567_89ab_cdef_1122_3344_5566_7788u128 % P;
        let b = 0x0fed_cba9_8765_4321_8877_6655_4433_2211u128 % P;
        let am = ctx.to_mont(&words(a, 2));
        let bm = ctx.to_mont(&words(b, 2));
        let prod = ctx.from_mont(&ctx.mont_mul(&am, &bm));
        // Reference via shift-and-add in u128 is awkward; use the identity
        // (a·b mod p) for Mersenne p: fold the 256-bit product.
        let expect = mulmod_mersenne127(a, b);
        assert_eq!(prod, words(expect, 2));
    }

    fn mulmod_mersenne127(a: u128, b: u128) -> u128 {
        // Schoolbook 128×128 → 256, then fold mod 2^127 − 1.
        let (a0, a1) = (a as u64 as u128, a >> 64);
        let (b0, b1) = (b as u64 as u128, b >> 64);
        let ll = a0 * b0;
        let lh = a0 * b1;
        let hl = a1 * b0;
        let hh = a1 * b1;
        let mid = lh + hl;
        let lo = ll.wrapping_add(mid << 64);
        let carry = if lo < ll { 1u128 } else { 0 };
        let hi = hh + (mid >> 64) + carry;
        // value = hi·2^128 + lo; 2^127 ≡ 1, so 2^128 ≡ 2.
        let mut acc = (lo & ((1 << 127) - 1)) + (lo >> 127) + 2 * (hi % ((1 << 127) - 1));
        while acc >= (1 << 127) - 1 {
            acc -= (1 << 127) - 1;
        }
        acc
    }

    #[test]
    fn pow_small_cases() {
        let ctx = MontCtx::new(words(1_000_003, 1));
        // 2^10 = 1024 mod 1000003.
        assert_eq!(ctx.pow(&[2], &[10]), vec![1024]);
        // Fermat: a^(p−1) = 1.
        assert_eq!(ctx.pow(&[12345], &[1_000_002]), vec![1]);
        // Zero exponent.
        assert_eq!(ctx.pow(&[999], &[0]), vec![1]);
    }

    #[test]
    fn pow_matches_square_chain() {
        let ctx = MontCtx::new(words(P, 2));
        let base = words(987654321, 2);
        let e = 0b1011_0110u64;
        let fast = ctx.pow(&base, &[e]);
        // Reference: repeated multiplication.
        let bm = ctx.to_mont(&base);
        let mut acc = ctx.one();
        for _ in 0..e {
            acc = ctx.mont_mul(&acc, &bm);
        }
        assert_eq!(fast, ctx.from_mont(&acc));
    }

    #[test]
    fn sqr_matches_mul_by_self() {
        let ctx = MontCtx::new(words(P, 2));
        // Deterministic pseudo-random walk over Montgomery values: the
        // differential identity mont_sqr(a) == mont_mul(a, a) must hold
        // for every representable input, reduced or not-yet-normalized.
        let mut a = ctx.to_mont(&words(0x1234_5678_9abc_def0u128, 2));
        for _ in 0..64 {
            assert_eq!(ctx.mont_sqr(&a), ctx.mont_mul(&a, &a));
            a = ctx.mont_mul(&a, &ctx.r2);
        }
    }

    #[test]
    fn sqr_edge_values() {
        let ctx = MontCtx::new(words(P, 2));
        // 0, 1 (Montgomery R), and m − 1 stress the no-carry, identity,
        // and maximal-cross-term paths.
        let zero = vec![0u64; 2];
        assert_eq!(ctx.mont_sqr(&zero), ctx.mont_mul(&zero, &zero));
        let one = ctx.one();
        assert_eq!(ctx.mont_sqr(&one), ctx.mont_mul(&one, &one));
        let mut top = ctx.modulus().to_vec();
        top[0] -= 1;
        assert_eq!(ctx.mont_sqr(&top), ctx.mont_mul(&top, &top));
        // All-ones words below the modulus exercise saturated carries.
        let m = words(P - 1, 2);
        let mm = ctx.to_mont(&m);
        assert_eq!(ctx.mont_sqr(&mm), ctx.mont_mul(&mm, &mm));
    }

    #[test]
    fn sqr_single_limb_width() {
        let ctx = MontCtx::new(words(1_000_003, 1));
        for v in [0u64, 1, 2, 999, 1_000_002] {
            let vm = ctx.to_mont(&[v]);
            assert_eq!(ctx.mont_sqr(&vm), ctx.mont_mul(&vm, &vm), "v={v}");
        }
    }

    #[test]
    fn add_sub_helpers() {
        let mut a = vec![u64::MAX, 0];
        let carry = add_assign(&mut a, &[1, 0]);
        assert_eq!(carry, 0);
        assert_eq!(a, vec![0, 1]);
        let borrow = sub_assign(&mut a, &[1, 1]);
        assert_eq!(borrow, 1);
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_modulus_rejected() {
        let _ = MontCtx::new(vec![4]);
    }
}
